// Tests for the asynchronous RPC channel (request-id multiplexing
// over one connection) and the pipelined prefetch built on it.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "client/hvac_client.h"
#include "rpc/async_client.h"
#include "rpc/rpc_server.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac::rpc {
namespace {

class AsyncRpcFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.register_handler(1, [](const Bytes& req) -> Result<Bytes> {
      Bytes out = req;
      return out;
    });
    // Reverses the payload after a delay proportional to the first
    // byte — completions arrive out of issue order.
    server_.register_handler(2, [](const Bytes& req) -> Result<Bytes> {
      const int delay_ms = req.empty() ? 0 : req[0];
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      Bytes out(req.rbegin(), req.rend());
      return out;
    });
    server_.register_handler(3, [](const Bytes&) -> Result<Bytes> {
      return Error(ErrorCode::kPermission, "denied");
    });
    ASSERT_TRUE(server_.start().ok());
  }

  RpcServer server_{RpcServerOptions{"127.0.0.1:0", 4}};
};

TEST_F(AsyncRpcFixture, SingleCall) {
  AsyncRpcClient client(server_.endpoint());
  Bytes msg{1, 2, 3};
  const auto resp = client.call(1, msg);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, msg);
}

TEST_F(AsyncRpcFixture, ManyOutstandingOnOneConnection) {
  AsyncRpcClient client(server_.endpoint());
  std::vector<std::future<Result<Bytes>>> futures;
  for (uint8_t i = 0; i < 32; ++i) {
    futures.push_back(client.call_async(1, Bytes{i, uint8_t(i + 1)}));
  }
  for (uint8_t i = 0; i < 32; ++i) {
    const auto resp = futures[i].get();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ((*resp)[0], i);
  }
  EXPECT_EQ(client.pending(), 0u);
}

TEST_F(AsyncRpcFixture, OutOfOrderCompletionsMatchRequests) {
  AsyncRpcClient client(server_.endpoint());
  // First request sleeps 40 ms, second 1 ms: the second response
  // arrives first and must resolve the right future.
  auto slow = client.call_async(2, Bytes{40, 7});
  auto fast = client.call_async(2, Bytes{1, 9});
  const auto fast_resp = fast.get();
  const auto slow_resp = slow.get();
  ASSERT_TRUE(fast_resp.ok());
  ASSERT_TRUE(slow_resp.ok());
  EXPECT_EQ((*fast_resp)[0], 9);   // reversed {1,9}
  EXPECT_EQ((*slow_resp)[0], 7);   // reversed {40,7}
}

TEST_F(AsyncRpcFixture, HandlerErrorPerCall) {
  AsyncRpcClient client(server_.endpoint());
  auto good = client.call_async(1, Bytes{5});
  auto bad = client.call_async(3, Bytes{});
  EXPECT_TRUE(good.get().ok());
  const auto resp = bad.get();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kPermission);
}

TEST_F(AsyncRpcFixture, ShutdownFailsPending) {
  auto client = std::make_unique<AsyncRpcClient>(server_.endpoint());
  auto slow = client->call_async(2, Bytes{80, 1});
  client->shutdown();
  const auto resp = slow.get();
  ASSERT_FALSE(resp.ok());
  // Either the cancel or the torn-down connection, depending on
  // timing.
  EXPECT_TRUE(resp.error().code == ErrorCode::kCancelled ||
              resp.error().code == ErrorCode::kUnavailable);
  // Calls after shutdown fail immediately.
  EXPECT_FALSE(client->call(1, Bytes{}).ok());
}

TEST_F(AsyncRpcFixture, ServerLossFailsSubsequentCalls) {
  AsyncRpcClient client(server_.endpoint());
  ASSERT_TRUE(client.call(1, Bytes{1}).ok());
  auto slow = client.call_async(2, Bytes{60, 1});
  server_.stop();
  // stop() drains in-flight handlers, so the slow call may still
  // succeed; either way it must resolve, and new calls must fail.
  (void)slow.get();
  const auto resp = client.call(1, Bytes{2});
  EXPECT_FALSE(resp.ok());
}

TEST_F(AsyncRpcFixture, BrokenChannelReconnectsWhenServerReturns) {
  AsyncRpcClient client(server_.endpoint());
  ASSERT_TRUE(client.call(1, Bytes{1}).ok());

  // Kill the server: the channel breaks and calls fail.
  const std::string address = server_.endpoint().address;
  server_.stop();
  EXPECT_FALSE(client.call(1, Bytes{2}).ok());

  // A new server on the same port (listen_on sets SO_REUSEADDR): the
  // next call must dial a fresh connection instead of staying broken
  // forever.
  RpcServer revived{RpcServerOptions{address, 2}};
  revived.register_handler(1, [](const Bytes& req) -> Result<Bytes> {
    Bytes out = req;
    return out;
  });
  ASSERT_TRUE(revived.start().ok());
  Result<Bytes> resp = client.call(1, Bytes{3});
  // The first call after revival may race the broken-fd teardown;
  // one retry must land on the fresh connection.
  if (!resp.ok()) resp = client.call(1, Bytes{3});
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ((*resp)[0], 3);
  revived.stop();
}

TEST_F(AsyncRpcFixture, ConcurrentIssuersShareChannel) {
  AsyncRpcClient client(server_.endpoint());
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&client, &ok, t] {
      for (uint8_t i = 0; i < 25; ++i) {
        Bytes msg{uint8_t(t), i};
        const auto resp = client.call(1, msg);
        if (resp.ok() && *resp == msg) ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 100);
}

}  // namespace
}  // namespace hvac::rpc

namespace hvac {
namespace {

TEST(PrefetchMany, WarmsWholeDatasetPipelined) {
  namespace fs = std::filesystem;
  const std::string pfs_root = ::testing::TempDir() + "hvac_pf_pfs_" + std::to_string(::getpid());
  const std::string cache_root = ::testing::TempDir() + "hvac_pf_cache_" + std::to_string(::getpid());
  fs::remove_all(pfs_root);
  fs::remove_all(cache_root);
  const auto spec = workload::synthetic_small(40, 2048, 0.3);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = cache_root;
  o.instances = 2;
  server::NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();
  client::HvacClient client(copts);

  std::vector<std::string> paths;
  for (const auto& rel : tree->relative_paths) {
    paths.push_back(pfs_root + "/" + rel);
  }
  const auto warmed = client.prefetch_many(paths);
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(*warmed, paths.size());
  EXPECT_EQ(node.aggregated_metrics().misses, paths.size());

  // Every subsequent open is a hit.
  for (const auto& path : paths) {
    auto vfd = client.open(path);
    ASSERT_TRUE(vfd.ok());
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  EXPECT_EQ(node.aggregated_metrics().hits, paths.size());
  node.stop();
}

}  // namespace
}  // namespace hvac
