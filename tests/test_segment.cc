// Tests for segment-level caching (the paper's §III-E extension for
// datasets with highly skewed file sizes): segment math, the cache
// manager's per-segment dedup/fetch, and end-to-end segmented reads
// through live servers.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <thread>

#include "client/hvac_client.h"
#include "core/cache_manager.h"
#include "core/placement.h"
#include "core/segment.h"
#include "server/node_runtime.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using core::SegmentRange;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_seg_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- segment math ------------------------------------------------------------

TEST(Segment, KeyStableAndDistinct) {
  EXPECT_EQ(core::segment_key("a/b.bin", 3), "a/b.bin#3");
  EXPECT_NE(core::segment_key("a/b.bin", 3), core::segment_key("a/b.bin", 4));
}

TEST(Segment, CountRoundsUp) {
  EXPECT_EQ(core::segment_count(100, 64), 2u);
  EXPECT_EQ(core::segment_count(128, 64), 2u);
  EXPECT_EQ(core::segment_count(129, 64), 3u);
  EXPECT_EQ(core::segment_count(1, 64), 1u);
  EXPECT_EQ(core::segment_count(0, 64), 1u);
  EXPECT_EQ(core::segment_count(100, 0), 1u);
}

TEST(Segment, ForEachSegmentCoversRangeExactly) {
  std::vector<SegmentRange> ranges;
  core::for_each_segment(100, 250, 128, [&](const SegmentRange& r) {
    ranges.push_back(r);
  });
  // [100, 350) over 128-byte segments: seg 0 [100,128), seg 1
  // [128,256), seg 2 [256,350).
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].index, 0u);
  EXPECT_EQ(ranges[0].skip, 100u);
  EXPECT_EQ(ranges[0].length, 28u);
  EXPECT_EQ(ranges[1].index, 1u);
  EXPECT_EQ(ranges[1].skip, 0u);
  EXPECT_EQ(ranges[1].length, 128u);
  EXPECT_EQ(ranges[2].index, 2u);
  EXPECT_EQ(ranges[2].length, 94u);
  uint64_t total = 0;
  for (const auto& r : ranges) total += r.length;
  EXPECT_EQ(total, 250u);
}

TEST(Segment, ForEachSegmentEmptyAndAligned) {
  int calls = 0;
  core::for_each_segment(64, 0, 64, [&](const SegmentRange&) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<SegmentRange> ranges;
  core::for_each_segment(128, 128, 64, [&](const SegmentRange& r) {
    ranges.push_back(r);
  });
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].index, 2u);
  EXPECT_EQ(ranges[0].skip, 0u);
}

TEST(Segment, SegmentsOfOneFileSpreadAcrossServers) {
  core::Placement placement(64);
  std::set<uint32_t> homes;
  for (uint64_t seg = 0; seg < 64; ++seg) {
    homes.insert(placement.home(core::segment_key("huge.tfrecord", seg)));
  }
  // One giant file no longer hammers a single home server.
  EXPECT_GT(homes.size(), 24u);
}

// ---- cache manager segments ----------------------------------------------------

struct SegFixture {
  std::string pfs_root;
  std::unique_ptr<storage::PfsBackend> pfs;
  std::unique_ptr<core::CacheManager> cache;
  std::vector<uint8_t> file_data;

  explicit SegFixture(const std::string& name, uint64_t file_size,
                      uint64_t capacity = 0) {
    pfs_root = temp_dir(name + "_pfs");
    file_data.resize(file_size);
    for (size_t i = 0; i < file_data.size(); ++i) {
      file_data[i] = uint8_t((i * 131) % 251);
    }
    EXPECT_TRUE(storage::write_file(pfs_root + "/big.bin",
                                    file_data.data(), file_data.size())
                    .ok());
    pfs = std::make_unique<storage::PfsBackend>(pfs_root);
    cache = std::make_unique<core::CacheManager>(
        pfs.get(),
        std::make_unique<storage::LocalStore>(temp_dir(name + "_cache"),
                                              capacity),
        core::make_eviction_policy("fifo"));
  }
};

TEST(SegmentCache, FetchesOnlyRequestedSegment) {
  SegFixture fx("fetch", 10000);
  constexpr uint64_t kSeg = 1024;
  const auto cached = fx.cache->ensure_segment_cached("big.bin", 3, kSeg);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(*cached);
  // Only one segment's bytes crossed the PFS.
  EXPECT_EQ(fx.pfs->bytes_read(), kSeg);
  EXPECT_TRUE(fx.cache->store().contains(core::segment_key("big.bin", 3)));
  EXPECT_FALSE(fx.cache->store().contains("big.bin"));
}

TEST(SegmentCache, PreadSegmentReturnsCorrectBytes) {
  SegFixture fx("bytes", 10000);
  constexpr uint64_t kSeg = 1024;
  uint8_t buf[200];
  // Read 200 bytes at offset 100 of segment 2 (file offset 2148).
  const auto n =
      fx.cache->pread_segment("big.bin", 2, kSeg, buf, sizeof(buf), 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  EXPECT_TRUE(std::equal(buf, buf + 200,
                         fx.file_data.begin() + 2 * kSeg + 100));
}

TEST(SegmentCache, FinalShortSegmentClamped) {
  SegFixture fx("tail", 2500);
  constexpr uint64_t kSeg = 1024;
  // Segment 2 holds only [2048, 2500).
  uint8_t buf[1024];
  const auto n =
      fx.cache->pread_segment("big.bin", 2, kSeg, buf, sizeof(buf), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 452u);
  // Past-EOF segment is an error.
  EXPECT_FALSE(fx.cache->ensure_segment_cached("big.bin", 3, kSeg).ok());
}

TEST(SegmentCache, SingleCopyPerSegmentUnderConcurrency) {
  SegFixture fx("conc", 64 * 1024);
  constexpr uint64_t kSeg = 8 * 1024;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      uint8_t buf[64];
      // Everyone hammers segment 5.
      const auto n =
          fx.cache->pread_segment("big.bin", 5, kSeg, buf, sizeof(buf), 0);
      if (n.ok() && *n == 64) ++ok;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(fx.pfs->bytes_read(), kSeg);  // one fetch total
  EXPECT_EQ(fx.cache->metrics().misses, 1u);
}

TEST(SegmentCache, SegmentsEvictIndependently) {
  // Capacity for ~2 segments; reading 4 distinct segments must evict.
  SegFixture fx("evict", 8 * 1024, /*capacity=*/2 * 1024 + 512);
  constexpr uint64_t kSeg = 1024;
  uint8_t buf[8];
  for (uint64_t seg = 0; seg < 4; ++seg) {
    ASSERT_TRUE(
        fx.cache->pread_segment("big.bin", seg, kSeg, buf, 8, 0).ok());
  }
  EXPECT_GT(fx.cache->metrics().evictions, 0u);
  EXPECT_LE(fx.cache->store().bytes_used(), 2 * 1024 + 512);
}

// ---- end-to-end through servers -------------------------------------------------

TEST(SegmentSystem, SegmentedReadsMatchWholeFile) {
  const std::string pfs_root = temp_dir("sys_pfs");
  // One 300 KB file — big enough to split into many 32 KB segments.
  const std::string rel = "class_0000/huge.bin";
  const auto expected = workload::expected_contents(rel, 300 * 1024);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());

  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.segment_bytes = 32 * 1024;
  for (int n = 0; n < 3; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = temp_dir("sys_cache" + std::to_string(n));
    o.instances = 1;
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    ASSERT_TRUE(nodes.back()->start().ok());
    copts.server_endpoints.push_back(nodes.back()->endpoints()[0]);
  }
  client::HvacClient client(copts);

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());

  // Sequential whole-file read crosses many segment boundaries.
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(10'000);  // deliberately unaligned chunks
  for (;;) {
    const auto n = client.read(*vfd, buf.data(), buf.size());
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    if (*n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + *n);
  }
  EXPECT_EQ(data, expected);

  // Random pread inside one segment.
  const auto n = client.pread(*vfd, buf.data(), 500, 123'456);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 500u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.begin() + 500,
                         expected.begin() + 123'456));
  ASSERT_TRUE(client.close(*vfd).ok());

  // The segments really spread across the three nodes' stores.
  int nodes_with_segments = 0;
  size_t total_entries = 0;
  for (auto& node : nodes) {
    const size_t entries = node->instance(0).cache().store().entry_count();
    total_entries += entries;
    if (entries > 0) ++nodes_with_segments;
  }
  EXPECT_EQ(total_entries, core::segment_count(expected.size(), 32 * 1024));
  EXPECT_GE(nodes_with_segments, 2);
  for (auto& node : nodes) node->stop();
}

TEST(SegmentSystem, SmallFilesBypassSegmentation) {
  const std::string pfs_root = temp_dir("small_pfs");
  const std::string rel = "tiny.bin";
  const auto expected = workload::expected_contents(rel, 2048);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());
  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = temp_dir("small_cache");
  server::NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.segment_bytes = 32 * 1024;  // tiny.bin is below the threshold
  copts.server_endpoints = node.endpoints();
  client::HvacClient client(copts);

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());
  std::vector<uint8_t> buf(4096);
  const auto n = client.read(*vfd, buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2048u);
  ASSERT_TRUE(client.close(*vfd).ok());
  // Cached as a whole file, not a segment.
  EXPECT_TRUE(node.instance(0).cache().store().contains(rel));
  node.stop();
}

}  // namespace
}  // namespace hvac
