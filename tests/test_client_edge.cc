// Client-library edge cases: EOF semantics, bad fds, chunked bulk
// reads across the RPC frame cap, env bootstrap, and path hygiene.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "client/hvac_client.h"
#include "client/meta_cache.h"
#include "rpc/health.h"
#include "server/hvac_proto.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_edge_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    rel_ = "f.bin";
    expected_ = workload::expected_contents(rel_, 20'000);
    ASSERT_TRUE(storage::write_file(pfs_root_ + "/" + rel_,
                                    expected_.data(), expected_.size())
                    .ok());
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root_;
    o.cache_root = temp_dir("cache");
    node_ = std::make_unique<server::NodeRuntime>(o);
    ASSERT_TRUE(node_->start().ok());
  }

  HvacClientOptions base_options() const {
    HvacClientOptions o;
    o.dataset_dir = pfs_root_;
    o.server_endpoints = node_->endpoints();
    return o;
  }

  std::string pfs_root_, rel_;
  std::vector<uint8_t> expected_;
  std::unique_ptr<server::NodeRuntime> node_;
};

TEST_F(EdgeFixture, ReadAtAndPastEofReturnsZero) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  uint8_t buf[64];
  // Exactly at EOF.
  ASSERT_EQ(client.lseek(*vfd, 0, SEEK_END).value(), 20'000);
  EXPECT_EQ(client.read(*vfd, buf, sizeof(buf)).value(), 0u);
  // Far past EOF via pread.
  EXPECT_EQ(client.pread(*vfd, buf, sizeof(buf), 1u << 30).value(), 0u);
  // Short final read.
  ASSERT_EQ(client.lseek(*vfd, 19'990, SEEK_SET).value(), 19'990);
  EXPECT_EQ(client.read(*vfd, buf, sizeof(buf)).value(), 10u);
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, BadFdOperationsReportBadFd) {
  HvacClient client(base_options());
  uint8_t buf[8];
  EXPECT_EQ(client.read(12345 + (1 << 20), buf, 8).error().code,
            ErrorCode::kBadFd);
  EXPECT_EQ(client.lseek(12345 + (1 << 20), 0, SEEK_SET).error().code,
            ErrorCode::kBadFd);
  EXPECT_EQ(client.close(12345 + (1 << 20)).error().code,
            ErrorCode::kBadFd);
}

TEST_F(EdgeFixture, DoubleCloseFails) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  EXPECT_TRUE(client.close(*vfd).ok());
  EXPECT_FALSE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, TinyChunkSizeStillCorrect) {
  // Force many bulk RPCs per read: 512-byte chunks over a 20 KB file.
  auto options = base_options();
  options.read_chunk_bytes = 512;
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  std::vector<uint8_t> data(expected_.size());
  const auto n = client.pread(*vfd, data.data(), data.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, expected_.size());
  EXPECT_EQ(data, expected_);
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, UnnormalizedPathsResolve) {
  HvacClient client(base_options());
  const std::string messy =
      pfs_root_ + "/./sub/../" + rel_;  // normalizes to f.bin
  auto vfd = client.open(messy);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  ASSERT_TRUE(client.close(*vfd).ok());
  EXPECT_EQ(client.home_of(messy), client.home_of(pfs_root_ + "/" + rel_));
}

TEST_F(EdgeFixture, SequentialThenSeekInterleavedOffsets) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  uint8_t a[10], b[10];
  ASSERT_TRUE(client.read(*vfd, a, 10).ok());   // offset now 10
  ASSERT_TRUE(client.pread(*vfd, b, 10, 0).ok());  // must not move it
  ASSERT_TRUE(client.read(*vfd, b, 10).ok());   // continues at 10
  EXPECT_TRUE(std::equal(b, b + 10, expected_.begin() + 10));
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST(ClientEnv, OptionsFromEnvRoundTrip) {
  ::setenv("HVAC_DATASET_DIR", "/data//set/", 1);
  ::setenv("HVAC_SERVERS", "127.0.0.1:1,127.0.0.1:2", 1);
  ::setenv("HVAC_REPLICAS", "2", 1);
  ::setenv("HVAC_PLACEMENT", "rendezvous", 1);
  ::setenv("HVAC_SEGMENT_BYTES", "1048576", 1);
  const auto o = client::options_from_env();
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->dataset_dir, "/data/set");
  EXPECT_EQ(o->server_endpoints.size(), 2u);
  EXPECT_EQ(o->replicas, 2u);
  EXPECT_EQ(o->placement, core::PlacementPolicy::kRendezvous);
  EXPECT_EQ(o->segment_bytes, 1048576u);
  ::unsetenv("HVAC_DATASET_DIR");
  EXPECT_FALSE(client::options_from_env().ok());
  ::setenv("HVAC_DATASET_DIR", "/data/set", 1);
  ::unsetenv("HVAC_SERVERS");
  EXPECT_FALSE(client::options_from_env().ok());
  ::unsetenv("HVAC_DATASET_DIR");
  ::unsetenv("HVAC_REPLICAS");
  ::unsetenv("HVAC_PLACEMENT");
  ::unsetenv("HVAC_SEGMENT_BYTES");
}

TEST_F(EdgeFixture, StatSizeFallsBackWhenServersDie) {
  auto options = base_options();
  options.rpc.connect_timeout_ms = 200;
  options.rpc.recv_timeout_ms = 200;
  HvacClient client(options);
  node_->stop();
  const auto size = client.stat_size(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, expected_.size());
}

// ---- read-ahead -----------------------------------------------------------

TEST_F(EdgeFixture, ReadAheadSequentialStreamIsCorrectAndHits) {
  auto options = base_options();
  options.read_chunk_bytes = 1024;  // 20 chunks over the 20 KB file
  options.readahead_chunks = 3;
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());

  // Stream front to back in chunk-sized reads — the DL sample pattern
  // the read-ahead targets.
  std::vector<uint8_t> data(expected_.size());
  size_t pos = 0;
  while (pos < data.size()) {
    const auto n = client.read(*vfd, data.data() + pos, 1024);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    pos += *n;
  }
  EXPECT_EQ(pos, expected_.size());
  EXPECT_EQ(data, expected_);
  ASSERT_TRUE(client.close(*vfd).ok());

  const auto s = client.stats();
  EXPECT_GT(s.readahead_issued, 0u);
  EXPECT_GT(s.readahead_hits, 0u);
  EXPECT_LE(s.readahead_hits, s.readahead_issued);
}

TEST_F(EdgeFixture, ReadAheadSurvivesRandomAccess) {
  auto options = base_options();
  options.read_chunk_bytes = 1024;
  options.readahead_chunks = 2;
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());

  // Sequential run to spin the window up, then random jumps that must
  // invalidate it, then sequential again — bytes must stay correct
  // throughout.
  std::vector<uint8_t> buf(1024);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.pread(*vfd, buf.data(), 1024, i * 1024u).ok());
    EXPECT_TRUE(std::equal(buf.begin(), buf.end(),
                           expected_.begin() + i * 1024));
  }
  for (const uint64_t off : {9000u, 300u, 17'500u, 0u}) {
    const auto n = client.pread(*vfd, buf.data(), 1024, off);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, std::min<size_t>(1024, expected_.size() - off));
    EXPECT_TRUE(std::equal(buf.begin(), buf.begin() + *n,
                           expected_.begin() + off));
  }
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(client.pread(*vfd, buf.data(), 1024, i * 1024u).ok());
    EXPECT_TRUE(std::equal(buf.begin(), buf.end(),
                           expected_.begin() + i * 1024));
  }
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, ReadAheadDisabledMatchesSeedBehaviour) {
  auto options = base_options();
  options.read_chunk_bytes = 1024;
  options.readahead_chunks = 0;  // HVAC_READAHEAD=0
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  std::vector<uint8_t> data(expected_.size());
  ASSERT_EQ(client.pread(*vfd, data.data(), data.size(), 0).value(),
            expected_.size());
  EXPECT_EQ(data, expected_);
  ASSERT_TRUE(client.close(*vfd).ok());
  EXPECT_EQ(client.stats().readahead_issued, 0u);
  EXPECT_EQ(client.stats().readahead_hits, 0u);
}

TEST_F(EdgeFixture, ReadAheadFailsOpenWhenServersDie) {
  auto options = base_options();
  options.read_chunk_bytes = 1024;
  options.readahead_chunks = 2;
  options.rpc.connect_timeout_ms = 200;
  options.rpc.recv_timeout_ms = 200;
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());

  // Spin the window up, then kill the servers: pending chunks turn
  // into transport errors that must degrade to the PFS, not corrupt
  // the stream.
  std::vector<uint8_t> data(expected_.size());
  ASSERT_EQ(client.pread(*vfd, data.data(), 2048, 0).value(), 2048u);
  node_->stop();
  size_t pos = 2048;
  while (pos < data.size()) {
    const auto n = client.pread(*vfd, data.data() + pos,
                                data.size() - pos, pos);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    if (*n == 0) break;
    pos += *n;
  }
  EXPECT_EQ(pos, expected_.size());
  EXPECT_EQ(data, expected_);
}

// A server whose frame bound admits opens (tiny request) but drops
// every read (20-byte header + path exceeds 16 bytes) is the nastiest
// failure shape: recover_fd re-opens remotely just fine, then the
// next read dies again. The recovery budget must bottom out at the
// PFS instead of recursing, and the stream must stay byte-exact —
// the fd-table's logical offset is the only position that survives
// the mid-stream swap.
TEST(HostileServer, OpensPassReadsDroppedDegradesToPfsExactly) {
  const std::string pfs_root = temp_dir("hostile_pfs");
  const std::string rel = "h.bin";
  const auto expected = workload::expected_contents(rel, 20'000);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel,
                                  expected.data(), expected.size())
                  .ok());

  // The bound is read from the environment at server construction;
  // scope it tightly so parallel tests never see it.
  ASSERT_EQ(::setenv("HVAC_MAX_FRAME_BYTES", "16", 1), 0);
  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = temp_dir("hostile_cache");
  auto node = std::make_unique<server::NodeRuntime>(o);
  const auto started = node->start();
  ::unsetenv("HVAC_MAX_FRAME_BYTES");
  ASSERT_TRUE(started.ok());

  HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node->endpoints();
  co.read_chunk_bytes = 4096;
  co.rpc.connect_timeout_ms = 500;
  co.rpc.recv_timeout_ms = 500;
  HvacClient client(co);

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());

  // Sequential read() drives both the bounded recovery and the
  // logical-offset bookkeeping: a kernel-offset desync would double
  // or skip bytes here.
  std::vector<uint8_t> data;
  data.reserve(expected.size());
  uint8_t buf[3000];
  for (;;) {
    const auto n = client.read(*vfd, buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    if (*n == 0) break;
    data.insert(data.end(), buf, buf + *n);
    ASSERT_LE(data.size(), expected.size());
  }
  EXPECT_EQ(data, expected);

  // And the positional path straddling a recovery boundary.
  std::vector<uint8_t> tail(expected.size() - 5'000);
  const auto n = client.pread(*vfd, tail.data(), tail.size(), 5'000);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  ASSERT_EQ(*n, tail.size());
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                         expected.begin() + 5'000));
  ASSERT_TRUE(client.close(*vfd).ok());
  node->stop();
}

// Same hostile shape with the PFS escape hatch closed: the bounded
// recovery budget must surface an error after kMaxRecoveries instead
// of looping open/fail forever.
TEST(HostileServer, RecoveryBudgetExhaustsWithoutPfsFallback) {
  const std::string pfs_root = temp_dir("budget_pfs");
  const std::string rel = "b.bin";
  const auto expected = workload::expected_contents(rel, 8'000);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel,
                                  expected.data(), expected.size())
                  .ok());

  ASSERT_EQ(::setenv("HVAC_MAX_FRAME_BYTES", "16", 1), 0);
  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = temp_dir("budget_cache");
  auto node = std::make_unique<server::NodeRuntime>(o);
  const auto started = node->start();
  ::unsetenv("HVAC_MAX_FRAME_BYTES");
  ASSERT_TRUE(started.ok());

  HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node->endpoints();
  co.allow_pfs_fallback = false;
  co.rpc.connect_timeout_ms = 500;
  co.rpc.recv_timeout_ms = 500;
  co.rpc.max_retries = 0;
  HvacClient client(co);

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());  // tiny open frames pass the 16-byte bound

  uint8_t buf[256];
  const auto t0 = std::chrono::steady_clock::now();
  const auto n = client.pread(*vfd, buf, sizeof(buf), 0);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, ErrorCode::kUnavailable);
  // kMaxRecoveries re-opens plus the dropped reads, each bounded by
  // the 500 ms recv timeout — nowhere near an unbounded loop.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                .count(),
            20);

  // The fd is still usable bookkeeping-wise: close must not hang.
  (void)client.close(*vfd);
  node->stop();
}

// ---- client metadata cache ------------------------------------------------

TEST(MetaCacheUnit, PutLookupInvalidateHomeAndTtl) {
  client::MetaCache cache(60);
  ASSERT_TRUE(cache.enabled());
  cache.put("a", client::MetaEntry{100, 0, true});
  cache.put("b", client::MetaEntry{200, 1, false});
  const auto a = cache.lookup("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 100u);
  EXPECT_EQ(a->home, 0u);
  EXPECT_TRUE(a->cached);
  EXPECT_EQ(cache.size(), 2u);

  cache.invalidate("a");
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("b").has_value());

  // invalidate_home drops every entry routed to that server, and only
  // those.
  cache.put("c", client::MetaEntry{1, 1, true});
  cache.put("d", client::MetaEntry{2, 0, true});
  cache.invalidate_home(1);
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_FALSE(cache.lookup("c").has_value());
  EXPECT_TRUE(cache.lookup("d").has_value());

  // Entries expire after the TTL.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(cache.lookup("d").has_value());
  EXPECT_EQ(cache.size(), 0u);

  // ttl_ms = 0 disables the cache entirely.
  client::MetaCache off(0);
  EXPECT_FALSE(off.enabled());
  off.put("x", client::MetaEntry{1, 0, true});
  EXPECT_FALSE(off.lookup("x").has_value());
}

TEST_F(EdgeFixture, MetaCachePathModeReopenSkipsOpenRpc) {
  HvacClient client(base_options());  // default HVAC_META_TTL_MS: 3 s
  const std::string path = pfs_root_ + "/" + rel_;
  std::vector<uint8_t> buf(expected_.size());

  // Warm the server cache: the pass-1 read-through schedules caching
  // (possibly asynchronously), so loop until reads come from cache.
  for (int i = 0; i < 200; ++i) {
    auto vfd = client.open(path);
    ASSERT_TRUE(vfd.ok());
    ASSERT_TRUE(client.pread(*vfd, buf.data(), buf.size(), 0).ok());
    ASSERT_TRUE(client.close(*vfd).ok());
    if (node_->aggregated_metrics().bytes_from_cache >=
        expected_.size()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // One more open/close: its reply says "served from cache", which is
  // what makes the client remember {size, home, cached=true}.
  {
    auto vfd = client.open(path);
    ASSERT_TRUE(vfd.ok());
    ASSERT_TRUE(client.close(*vfd).ok());
  }

  const uint64_t opens_before =
      node_->aggregated_frame().op_latency[proto::kOpen].count;
  const auto stats_before = client.stats();

  // This open must be answered from the meta cache alone: no kOpen
  // RPC reaches the server, and the path-mode fd still reads the
  // exact bytes.
  auto vfd = client.open(path);
  ASSERT_TRUE(vfd.ok());
  std::fill(buf.begin(), buf.end(), 0);
  const auto n = client.pread(*vfd, buf.data(), buf.size(), 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(*n, expected_.size());
  EXPECT_EQ(buf, expected_);
  ASSERT_TRUE(client.close(*vfd).ok());

  EXPECT_EQ(node_->aggregated_frame().op_latency[proto::kOpen].count,
            opens_before);
  EXPECT_GT(client.stats().meta_hits, stats_before.meta_hits);
}

TEST_F(EdgeFixture, MetaCacheTtlExpiryForcesRestat) {
  auto options = base_options();
  options.meta_ttl_ms = 80;
  HvacClient client(options);
  const std::string path = pfs_root_ + "/" + rel_;

  ASSERT_TRUE(client.stat_size(path).ok());  // miss: populates
  const auto s1 = client.stats();
  ASSERT_TRUE(client.stat_size(path).ok());  // within TTL
  const auto s2 = client.stats();
  EXPECT_EQ(s2.meta_hits, s1.meta_hits + 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(160));
  const auto size = client.stat_size(path);  // expired: re-stats
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, expected_.size());
  const auto s3 = client.stats();
  EXPECT_EQ(s3.meta_hits, s2.meta_hits);
  EXPECT_GT(s3.meta_misses, s2.meta_misses);
}

TEST_F(EdgeFixture, BreakerTripInvalidatesMetaEntries) {
  rpc::HealthRegistry::global().reset();
  HvacClient client(base_options());
  const std::string path = pfs_root_ + "/" + rel_;

  ASSERT_TRUE(client.stat_size(path).ok());  // populate {size, home}
  const auto s1 = client.stats();
  ASSERT_TRUE(client.stat_size(path).ok());
  EXPECT_GT(client.stats().meta_hits, s1.meta_hits);

  // Trip the breaker on the entry's home endpoint by hand.
  auto health = rpc::HealthRegistry::global().get(node_->endpoints()[0]);
  while (health->state() != rpc::EndpointHealth::State::kOpen) {
    health->record_failure();
  }

  // The next lookup sees the open circuit and drops everything cached
  // for that home instead of trusting a route that would fail fast —
  // a miss, answered via re-stat or the PFS fallback.
  const auto s2 = client.stats();
  const auto size = client.stat_size(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, expected_.size());
  const auto s3 = client.stats();
  EXPECT_EQ(s3.meta_hits, s2.meta_hits);
  EXPECT_GT(s3.meta_misses, s2.meta_misses);
  rpc::HealthRegistry::global().reset();
}

}  // namespace
}  // namespace hvac
