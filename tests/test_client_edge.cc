// Client-library edge cases: EOF semantics, bad fds, chunked bulk
// reads across the RPC frame cap, env bootstrap, and path hygiene.
#include <gtest/gtest.h>

#include <filesystem>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_edge_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    rel_ = "f.bin";
    expected_ = workload::expected_contents(rel_, 20'000);
    ASSERT_TRUE(storage::write_file(pfs_root_ + "/" + rel_,
                                    expected_.data(), expected_.size())
                    .ok());
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root_;
    o.cache_root = temp_dir("cache");
    node_ = std::make_unique<server::NodeRuntime>(o);
    ASSERT_TRUE(node_->start().ok());
  }

  HvacClientOptions base_options() const {
    HvacClientOptions o;
    o.dataset_dir = pfs_root_;
    o.server_endpoints = node_->endpoints();
    return o;
  }

  std::string pfs_root_, rel_;
  std::vector<uint8_t> expected_;
  std::unique_ptr<server::NodeRuntime> node_;
};

TEST_F(EdgeFixture, ReadAtAndPastEofReturnsZero) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  uint8_t buf[64];
  // Exactly at EOF.
  ASSERT_EQ(client.lseek(*vfd, 0, SEEK_END).value(), 20'000);
  EXPECT_EQ(client.read(*vfd, buf, sizeof(buf)).value(), 0u);
  // Far past EOF via pread.
  EXPECT_EQ(client.pread(*vfd, buf, sizeof(buf), 1u << 30).value(), 0u);
  // Short final read.
  ASSERT_EQ(client.lseek(*vfd, 19'990, SEEK_SET).value(), 19'990);
  EXPECT_EQ(client.read(*vfd, buf, sizeof(buf)).value(), 10u);
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, BadFdOperationsReportBadFd) {
  HvacClient client(base_options());
  uint8_t buf[8];
  EXPECT_EQ(client.read(12345 + (1 << 20), buf, 8).error().code,
            ErrorCode::kBadFd);
  EXPECT_EQ(client.lseek(12345 + (1 << 20), 0, SEEK_SET).error().code,
            ErrorCode::kBadFd);
  EXPECT_EQ(client.close(12345 + (1 << 20)).error().code,
            ErrorCode::kBadFd);
}

TEST_F(EdgeFixture, DoubleCloseFails) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  EXPECT_TRUE(client.close(*vfd).ok());
  EXPECT_FALSE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, TinyChunkSizeStillCorrect) {
  // Force many bulk RPCs per read: 512-byte chunks over a 20 KB file.
  auto options = base_options();
  options.read_chunk_bytes = 512;
  HvacClient client(options);
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  std::vector<uint8_t> data(expected_.size());
  const auto n = client.pread(*vfd, data.data(), data.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, expected_.size());
  EXPECT_EQ(data, expected_);
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST_F(EdgeFixture, UnnormalizedPathsResolve) {
  HvacClient client(base_options());
  const std::string messy =
      pfs_root_ + "/./sub/../" + rel_;  // normalizes to f.bin
  auto vfd = client.open(messy);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  ASSERT_TRUE(client.close(*vfd).ok());
  EXPECT_EQ(client.home_of(messy), client.home_of(pfs_root_ + "/" + rel_));
}

TEST_F(EdgeFixture, SequentialThenSeekInterleavedOffsets) {
  HvacClient client(base_options());
  auto vfd = client.open(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(vfd.ok());
  uint8_t a[10], b[10];
  ASSERT_TRUE(client.read(*vfd, a, 10).ok());   // offset now 10
  ASSERT_TRUE(client.pread(*vfd, b, 10, 0).ok());  // must not move it
  ASSERT_TRUE(client.read(*vfd, b, 10).ok());   // continues at 10
  EXPECT_TRUE(std::equal(b, b + 10, expected_.begin() + 10));
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST(ClientEnv, OptionsFromEnvRoundTrip) {
  ::setenv("HVAC_DATASET_DIR", "/data//set/", 1);
  ::setenv("HVAC_SERVERS", "127.0.0.1:1,127.0.0.1:2", 1);
  ::setenv("HVAC_REPLICAS", "2", 1);
  ::setenv("HVAC_PLACEMENT", "rendezvous", 1);
  ::setenv("HVAC_SEGMENT_BYTES", "1048576", 1);
  const auto o = client::options_from_env();
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->dataset_dir, "/data/set");
  EXPECT_EQ(o->server_endpoints.size(), 2u);
  EXPECT_EQ(o->replicas, 2u);
  EXPECT_EQ(o->placement, core::PlacementPolicy::kRendezvous);
  EXPECT_EQ(o->segment_bytes, 1048576u);
  ::unsetenv("HVAC_DATASET_DIR");
  EXPECT_FALSE(client::options_from_env().ok());
  ::setenv("HVAC_DATASET_DIR", "/data/set", 1);
  ::unsetenv("HVAC_SERVERS");
  EXPECT_FALSE(client::options_from_env().ok());
  ::unsetenv("HVAC_DATASET_DIR");
  ::unsetenv("HVAC_REPLICAS");
  ::unsetenv("HVAC_PLACEMENT");
  ::unsetenv("HVAC_SEGMENT_BYTES");
}

TEST_F(EdgeFixture, StatSizeFallsBackWhenServersDie) {
  auto options = base_options();
  options.rpc.connect_timeout_ms = 200;
  options.rpc.recv_timeout_ms = 200;
  HvacClient client(options);
  node_->stop();
  const auto size = client.stat_size(pfs_root_ + "/" + rel_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, expected_.size());
}

}  // namespace
}  // namespace hvac
