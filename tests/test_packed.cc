// Packed container format (storage/packed_format.h): index codec
// hardening, pack_tree round trips, and the end-to-end promise — a
// packed dataset whose originals are GONE is served byte-for-byte
// through the client with zero per-sample open RPCs and at most one
// server open(2) per container.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "client/hvac_client.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "server/hvac_proto.h"
#include "server/node_runtime.h"
#include "storage/packed_format.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;
using server::NodeRuntime;
using server::NodeRuntimeOptions;
using storage::PackedEntry;
using storage::PackedIndex;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_packed_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

PackedIndex sample_index() {
  std::vector<PackedEntry> entries;
  entries.push_back({stable_hash("a/one.bin"), 0, 0, 100});
  entries.push_back({stable_hash("a/two.bin"), 0, 100, 50});
  entries.push_back({stable_hash("b/three.bin"), 1, 0, 4096});
  auto built = PackedIndex::build(std::move(entries), {150, 4096});
  EXPECT_TRUE(built.ok()) << built.error().to_string();
  return std::move(built).value();
}

TEST(PackedIndexCodec, RoundTrip) {
  const PackedIndex index = sample_index();
  const std::vector<uint8_t> raw = index.encode();
  auto decoded = PackedIndex::decode(raw.data(), raw.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded->entries.size(), 3u);
  ASSERT_EQ(decoded->container_sizes.size(), 2u);
  EXPECT_EQ(decoded->total_sample_bytes(), 100u + 50u + 4096u);

  const PackedEntry* hit = decoded->find(stable_hash("a/two.bin"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->container_id, 0u);
  EXPECT_EQ(hit->offset, 100u);
  EXPECT_EQ(hit->length, 50u);
  EXPECT_EQ(decoded->find(stable_hash("a/none.bin")), nullptr);
}

TEST(PackedIndexCodec, RejectsTruncation) {
  const std::vector<uint8_t> raw = sample_index().encode();
  // Every proper prefix must be rejected, never mis-decoded: the
  // header, the size table, mid-entry, and the missing checksum.
  for (const size_t cut : {size_t{0}, size_t{3}, size_t{19}, size_t{21},
                           raw.size() / 2, raw.size() - 1}) {
    auto decoded = PackedIndex::decode(raw.data(), cut);
    EXPECT_FALSE(decoded.ok()) << "accepted a " << cut << "-byte prefix";
    EXPECT_EQ(decoded.error().code, ErrorCode::kProtocol);
  }
}

TEST(PackedIndexCodec, RejectsCorruption) {
  const std::vector<uint8_t> raw = sample_index().encode();
  // Magic, version, a size-table byte, an entry byte, a checksum byte.
  for (const size_t at : {size_t{0}, size_t{4}, size_t{22},
                          size_t{raw.size() / 2}, raw.size() - 1}) {
    std::vector<uint8_t> bad = raw;
    bad[at] ^= 0xff;
    EXPECT_FALSE(PackedIndex::decode(bad.data(), bad.size()).ok())
        << "accepted corruption at byte " << at;
  }
  // Trailing garbage is not tolerated either.
  std::vector<uint8_t> longer = raw;
  longer.push_back(0);
  EXPECT_FALSE(PackedIndex::decode(longer.data(), longer.size()).ok());
}

TEST(PackedIndexCodec, RejectsOutOfRangeExtents) {
  // encode() is deliberately permissive (it writes what it is given);
  // decode() is where every reader's safety lives.
  PackedIndex bad_container = sample_index();
  bad_container.entries[0].container_id = 7;
  auto raw = bad_container.encode();
  EXPECT_FALSE(PackedIndex::decode(raw.data(), raw.size()).ok());

  PackedIndex overflow = sample_index();
  overflow.entries[1].length = 101;  // 100 + 101 > container 0's 150
  raw = overflow.encode();
  EXPECT_FALSE(PackedIndex::decode(raw.data(), raw.size()).ok());
}

TEST(PackedIndexCodec, RejectsDuplicateAndUnsortedHashes) {
  PackedIndex dup = sample_index();
  dup.entries[1].path_hash = dup.entries[0].path_hash;
  auto raw = dup.encode();
  EXPECT_FALSE(PackedIndex::decode(raw.data(), raw.size()).ok());

  PackedIndex unsorted = sample_index();
  std::swap(unsorted.entries[0], unsorted.entries[2]);
  raw = unsorted.encode();
  EXPECT_FALSE(PackedIndex::decode(raw.data(), raw.size()).ok());

  // build() refuses the collision up front.
  std::vector<PackedEntry> twice;
  twice.push_back({42, 0, 0, 1});
  twice.push_back({42, 0, 1, 1});
  EXPECT_FALSE(PackedIndex::build(std::move(twice), {2}).ok());
}

TEST(PackedFormat, PackTreeRoundTripAndIdempotence) {
  const std::string root = temp_dir("roundtrip");
  auto spec = workload::synthetic_small(60, 3000, 0.4);
  auto tree = workload::generate_tree(root, spec);
  ASSERT_TRUE(tree.ok());

  storage::PackOptions options;
  options.container_bytes = 32 << 10;  // force several containers
  auto report = storage::pack_tree(root, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report->files, tree->relative_paths.size());
  EXPECT_GT(report->containers, 1u);

  // Decode the on-disk index and read every sample straight out of its
  // container: bytes must equal the generator's pattern.
  auto raw = storage::read_file(root + "/" +
                                storage::packed_index_logical());
  ASSERT_TRUE(raw.ok());
  auto index = PackedIndex::decode(raw->data(), raw->size());
  ASSERT_TRUE(index.ok()) << index.error().to_string();
  for (size_t i = 0; i < tree->relative_paths.size(); ++i) {
    const std::string& rel = tree->relative_paths[i];
    const PackedEntry* e = index->find(stable_hash(rel));
    ASSERT_NE(e, nullptr) << rel;
    ASSERT_EQ(e->length, tree->sizes[i]);
    auto container = storage::PosixFile::open_read(
        root + "/" + storage::packed_container_logical(e->container_id));
    ASSERT_TRUE(container.ok());
    std::vector<uint8_t> data(e->length);
    auto n = container->pread(data.data(), data.size(), e->offset);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, e->length);
    EXPECT_TRUE(workload::verify_contents(rel, data)) << rel;
  }

  // Re-packing skips .hvacpack itself: same file population, and no
  // container-of-containers.
  auto again = storage::pack_tree(root, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->files, report->files);
  EXPECT_EQ(again->bytes, report->bytes);
}

TEST(PackedFormat, OversizedSampleGetsItsOwnContainer) {
  const std::string root = temp_dir("oversized");
  const std::vector<uint8_t> big(10000, 0xab);
  const std::vector<uint8_t> small(10, 0xcd);
  ASSERT_TRUE(
      storage::write_file(root + "/big.bin", big.data(), big.size()).ok());
  ASSERT_TRUE(
      storage::write_file(root + "/small.bin", small.data(), small.size())
          .ok());
  storage::PackOptions options;
  options.container_bytes = 4096;  // smaller than big.bin
  auto report = storage::pack_tree(root, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report->files, 2u);
  EXPECT_EQ(report->containers, 2u);  // never split, never co-packed

  auto raw = storage::read_file(root + "/" +
                                storage::packed_index_logical());
  ASSERT_TRUE(raw.ok());
  auto index = PackedIndex::decode(raw->data(), raw->size());
  ASSERT_TRUE(index.ok());
  const PackedEntry* big_entry = index->find(stable_hash("big.bin"));
  ASSERT_NE(big_entry, nullptr);
  EXPECT_EQ(big_entry->length, 10000u);
}

// One node serving a packed tree whose per-file originals were deleted
// after packing — the strongest proof that reads flow through the
// containers.
struct PackedAllocation {
  std::string pfs_root;
  std::string cache_root;
  workload::GeneratedTree tree;
  uint32_t containers = 0;
  std::unique_ptr<NodeRuntime> node;

  explicit PackedAllocation(const std::string& name, uint64_t files = 48,
                            bool delete_originals = true) {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    auto spec = workload::synthetic_small(files, 2048, 0.3);
    auto generated = workload::generate_tree(pfs_root, spec);
    EXPECT_TRUE(generated.ok());
    tree = std::move(generated).value();

    storage::PackOptions options;
    options.container_bytes = 16 << 10;
    auto report = storage::pack_tree(pfs_root, options);
    EXPECT_TRUE(report.ok());
    containers = report->containers;
    EXPECT_GT(containers, 1u);

    if (delete_originals) {
      for (const auto& rel : tree.relative_paths) {
        fs::remove(pfs_root + "/" + rel);
      }
    }

    NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = cache_root;
    o.instances = 1;
    node = std::make_unique<NodeRuntime>(o);
    EXPECT_TRUE(node->start().ok());
  }

  HvacClientOptions client_options() const {
    HvacClientOptions o;
    o.dataset_dir = pfs_root;
    o.server_endpoints = node->endpoints();
    return o;
  }
};

Result<std::vector<uint8_t>> read_whole(HvacClient& client,
                                        const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(int vfd, client.open(path));
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n,
                          client.read(vfd, buf.data(), buf.size()));
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  HVAC_RETURN_IF_ERROR(client.close(vfd));
  return data;
}

uint64_t op_count(const core::MetricsFrame& frame, uint16_t op) {
  for (const auto& [code, snap] : frame.op_latency) {
    if (code == op) return snap.count;
  }
  return 0;
}

TEST(PackedSystem, ServesDeletedOriginalsWithZeroOpenRpcs) {
  PackedAllocation alloc("e2e");
  HvacClient client(alloc.client_options());

  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    auto size = client.stat_size(alloc.pfs_root + "/" + rel);
    ASSERT_TRUE(size.ok()) << size.error().to_string();
    EXPECT_EQ(*size, alloc.tree.sizes[i]) << rel;
    auto data = read_whole(client, alloc.pfs_root + "/" + rel);
    ASSERT_TRUE(data.ok()) << rel << ": " << data.error().to_string();
    ASSERT_EQ(data->size(), alloc.tree.sizes[i]) << rel;
    EXPECT_TRUE(workload::verify_contents(rel, *data)) << rel;
  }

  const core::MetricsFrame frame = alloc.node->aggregated_frame();
  // The tentpole acceptance: zero per-sample kOpen RPCs, exactly one
  // index fetch, and at most one handle-cache miss per container.
  EXPECT_EQ(op_count(frame, proto::kOpen), 0u);
  EXPECT_GE(op_count(frame, proto::kPackedIndex), 1u);
  EXPECT_GT(op_count(frame, proto::kReadScatter), 0u);
  EXPECT_LE(frame.handle_cache.misses, alloc.containers);
  EXPECT_GT(frame.handle_cache.hits, 0u);

  const client::ClientStats stats = client.stats();
  EXPECT_EQ(stats.opens, alloc.tree.relative_paths.size());
  EXPECT_EQ(stats.remote_opens, stats.opens);
  EXPECT_EQ(stats.fallback_opens, 0u);
}

TEST(PackedSystem, DisabledClientStillReadsUnpackedTree) {
  // Packed resolution off (HVAC_PACK=0 equivalent): the per-file path
  // serves, provided the originals still exist.
  PackedAllocation alloc("disabled", 12, /*delete_originals=*/false);
  HvacClientOptions options = alloc.client_options();
  options.packed_enabled = false;
  HvacClient client(options);

  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    auto data = read_whole(client, alloc.pfs_root + "/" + rel);
    ASSERT_TRUE(data.ok()) << data.error().to_string();
    EXPECT_TRUE(workload::verify_contents(rel, *data)) << rel;
  }
  const core::MetricsFrame frame = alloc.node->aggregated_frame();
  EXPECT_EQ(op_count(frame, proto::kOpen),
            alloc.tree.relative_paths.size());
  EXPECT_EQ(op_count(frame, proto::kPackedIndex), 0u);
}

TEST(PackedSystem, CorruptIndexFailsOpenToPerFilePath) {
  // Flip a byte of the on-disk index before the server starts: the
  // server must log-and-disable (not die), the client must get
  // "absent" from kPackedIndex, and unpacked reads must still serve.
  const std::string pfs_root = temp_dir("corrupt_pfs");
  const std::string cache_root = temp_dir("corrupt_cache");
  auto spec = workload::synthetic_small(8, 1024, 0.2);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(storage::pack_tree(pfs_root).ok());
  const std::string index_path =
      pfs_root + "/" + storage::packed_index_logical();
  auto raw = storage::read_file(index_path);
  ASSERT_TRUE(raw.ok());
  (*raw)[raw->size() / 2] ^= 0xff;
  ASSERT_TRUE(
      storage::write_file(index_path, raw->data(), raw->size()).ok());

  NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = cache_root;
  o.instances = 1;
  NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  HvacClientOptions copt;
  copt.dataset_dir = pfs_root;
  copt.server_endpoints = node.endpoints();
  HvacClient client(copt);
  for (size_t i = 0; i < tree->relative_paths.size(); ++i) {
    auto data =
        read_whole(client, pfs_root + "/" + tree->relative_paths[i]);
    ASSERT_TRUE(data.ok()) << data.error().to_string();
    EXPECT_TRUE(workload::verify_contents(tree->relative_paths[i], *data));
  }
  // The per-file path was used (packed resolution never engaged).
  EXPECT_GT(op_count(node.aggregated_frame(), proto::kOpen), 0u);
}

TEST(PackedSystem, PackedReadsSurviveStoreFaults) {
  PackedAllocation alloc("faults", 24);
  HvacClient client(alloc.client_options());

  // The first two local-store opens fail (as if the NVMe hiccuped):
  // the server degrades those reads to its PFS read-through path and
  // the bytes must still be exact.
  ASSERT_TRUE(fault::configure("store_read:error:count=2").ok());
  size_t verified = 0;
  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    auto data = read_whole(client, alloc.pfs_root + "/" + rel);
    ASSERT_TRUE(data.ok()) << rel << ": " << data.error().to_string();
    ASSERT_TRUE(workload::verify_contents(rel, *data)) << rel;
    ++verified;
  }
  EXPECT_EQ(verified, alloc.tree.relative_paths.size());
  EXPECT_GT(fault::stats(fault::Site::kStoreRead).errors, 0u);
  fault::reset();
}

}  // namespace
}  // namespace hvac
