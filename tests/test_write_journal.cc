// Crash-consistency tests for the checkpoint write path: the
// write-ahead journal's framing (round-trip, torn tails, CRC
// corruption, idempotent replay) and the server's graceful ENOSPC
// degradation from write-back to write-through.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "client/hvac_client.h"
#include "common/fault_injection.h"
#include "core/metrics_frame.h"
#include "server/node_runtime.h"
#include "storage/write_journal.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using storage::WriteJournal;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_wal_" + name + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// In-memory replay target: reconstructs file images from the log the
// same way the server's recovery pass reconstructs store files.
struct Replayed {
  std::map<std::string, std::vector<uint8_t>> files;

  WriteJournal::ApplyFn apply() {
    return [this](const std::string& path, uint64_t offset, const void* data,
                  size_t size) -> Status {
      auto& f = files[path];
      if (f.size() < offset + size) f.resize(offset + size);
      std::memcpy(f.data() + offset, data, size);
      return Status::Ok();
    };
  }

  WriteJournal::TruncateFn truncate() {
    return [this](const std::string& path) -> Status {
      files[path].clear();
      return Status::Ok();
    };
  }
};

std::vector<uint8_t> bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Clears fault rules on every exit path (a leaked rule would poison
// unrelated tests in this binary).
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    EXPECT_TRUE(fault::configure(spec).ok());
  }
  ~FaultGuard() { (void)fault::configure(""); }
};

TEST(WriteJournal, Crc32KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(storage::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(storage::crc32("", 0), 0u);
}

TEST(WriteJournal, RoundTripAndDirtyTracking) {
  const std::string path = temp_dir("roundtrip") + "/j.wal";
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok()) << j.error().to_string();
    ASSERT_TRUE((*j)->append_write("a", 0, "hello", 5).ok());
    ASSERT_TRUE((*j)->append_write("b", 0, "world", 5).ok());
    ASSERT_TRUE((*j)->append_flushed("a").ok());
    ASSERT_TRUE((*j)->commit().ok());
  }
  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  Replayed r;
  auto stats = (*j)->replay(r.apply());
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats->writes_applied, 2u);
  EXPECT_EQ(stats->bytes_applied, 10u);
  EXPECT_EQ(stats->commits_seen, 1u);
  EXPECT_EQ(stats->flushes_seen, 1u);
  EXPECT_EQ(stats->truncated_bytes, 0u);
  // "a" was flushed after its write; only "b" is still dirty.
  ASSERT_EQ(stats->dirty_paths.size(), 1u);
  EXPECT_EQ(stats->dirty_paths[0], "b");
  EXPECT_EQ(r.files["a"], bytes("hello"));
  EXPECT_EQ(r.files["b"], bytes("world"));
}

TEST(WriteJournal, TornTailTruncatedWithoutError) {
  const std::string path = temp_dir("torn") + "/j.wal";
  uint64_t valid_end = 0;
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append_write("a", 0, "data", 4).ok());
    ASSERT_TRUE((*j)->commit().ok());
    valid_end = (*j)->size_bytes();
  }
  // A crash mid-append leaves a frame whose length prefix promises
  // more bytes than the file holds.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const uint32_t len = 1000;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write("torn", 4);
  }
  ASSERT_GT(fs::file_size(path), valid_end);

  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  Replayed r;
  auto stats = (*j)->replay(r.apply());
  ASSERT_TRUE(stats.ok()) << "torn tail must not fail recovery: "
                          << stats.error().to_string();
  EXPECT_EQ(stats->writes_applied, 1u);
  EXPECT_GT(stats->truncated_bytes, 0u);
  EXPECT_EQ(r.files["a"], bytes("data"));
  // The tail was physically cut: a second incarnation sees a clean log.
  EXPECT_EQ(fs::file_size(path), valid_end);
  auto j2 = WriteJournal::open(path);
  ASSERT_TRUE(j2.ok());
  Replayed r2;
  auto stats2 = (*j2)->replay(r2.apply());
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->truncated_bytes, 0u);
  EXPECT_EQ(stats2->writes_applied, 1u);
}

TEST(WriteJournal, CrcCorruptionCutsTailFromBadRecord) {
  const std::string path = temp_dir("crc") + "/j.wal";
  uint64_t first_end = 0;
  uint64_t total = 0;
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append_write("a", 0, "aaaa", 4).ok());
    first_end = (*j)->size_bytes();
    ASSERT_TRUE((*j)->append_write("b", 0, "bbbb", 4).ok());
    ASSERT_TRUE((*j)->commit().ok());
    total = (*j)->size_bytes();
  }
  // Flip one byte inside the second record's body (past its 8-byte
  // len+crc header): the CRC check must reject it and everything after.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(first_end) + 9);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x40;
    f.seekp(static_cast<std::streamoff>(first_end) + 9);
    f.write(&c, 1);
  }
  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  Replayed r;
  auto stats = (*j)->replay(r.apply());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->writes_applied, 1u);
  EXPECT_EQ(stats->truncated_bytes, total - first_end);
  EXPECT_EQ(r.files.count("b"), 0u);
  EXPECT_EQ(r.files["a"], bytes("aaaa"));
  EXPECT_EQ(fs::file_size(path), first_end);
}

TEST(WriteJournal, ReplayIsIdempotent) {
  const std::string path = temp_dir("idem") + "/j.wal";
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    // Overlapping writes: replay must preserve append order so the
    // later record wins on the overlap.
    ASSERT_TRUE((*j)->append_write("a", 0, "xxxx", 4).ok());
    ASSERT_TRUE((*j)->append_write("a", 2, "yyyy", 4).ok());
    ASSERT_TRUE((*j)->commit().ok());
  }
  std::vector<uint8_t> first;
  for (int round = 0; round < 2; ++round) {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    Replayed r;
    auto stats = (*j)->replay(r.apply());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->writes_applied, 2u);
    EXPECT_EQ(r.files["a"], bytes("xxyyyy"));
    if (round == 0) {
      first = r.files["a"];
    } else {
      EXPECT_EQ(r.files["a"], first);
    }
  }
}

TEST(WriteJournal, TruncateRecordResetsFile) {
  const std::string path = temp_dir("trunc") + "/j.wal";
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append_write("a", 0, "stale-old", 9).ok());
    ASSERT_TRUE((*j)->append_truncate("a").ok());
    ASSERT_TRUE((*j)->append_write("a", 0, "new", 3).ok());
    ASSERT_TRUE((*j)->commit().ok());
  }
  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  Replayed r;
  auto stats = (*j)->replay(r.apply(), r.truncate());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->truncates_seen, 1u);
  EXPECT_EQ(r.files["a"], bytes("new"));
}

TEST(WriteJournal, CheckpointResetEmptiesLog) {
  const std::string path = temp_dir("reset") + "/j.wal";
  {
    auto j = WriteJournal::open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append_write("a", 0, "data", 4).ok());
    ASSERT_TRUE((*j)->commit().ok());
    ASSERT_TRUE((*j)->checkpoint_reset().ok());
    EXPECT_EQ((*j)->size_bytes(), 0u);
    // The journal keeps working after a reset.
    ASSERT_TRUE((*j)->append_write("b", 0, "fresh", 5).ok());
    ASSERT_TRUE((*j)->commit().ok());
  }
  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  Replayed r;
  auto stats = (*j)->replay(r.apply());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->writes_applied, 1u);
  EXPECT_EQ(r.files.count("a"), 0u);
  EXPECT_EQ(r.files["b"], bytes("fresh"));
}

// ---- ENOSPC shed: a full local store degrades to write-through ----

struct WriteNode {
  std::string pfs_root;
  std::string cache_root;
  std::unique_ptr<server::NodeRuntime> node;
  client::HvacClientOptions copts;

  explicit WriteNode(const std::string& name) {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = cache_root;
    o.instances = 1;
    node = std::make_unique<server::NodeRuntime>(o);
    EXPECT_TRUE(node->start().ok());
    copts.dataset_dir = pfs_root;
    copts.server_endpoints = node->endpoints();
    copts.allow_pfs_fallback = false;  // a shed must happen server-side
  }

  std::string pfs_read(const std::string& rel) {
    std::ifstream in(pfs_root + "/" + rel, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST(WriteShed, FullStoreAtOpenDegradesToWriteThrough) {
  WriteNode n("shed_open");
  // Local NVMe reports full before the first byte: the handle must be
  // served write-through from the PFS, not fail the job.
  FaultGuard fault("store_write:error=capacity");

  client::HvacClient client(n.copts);
  auto vfd = client.open_write(n.pfs_root + "/ckpt/model.bin", true);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  const std::string payload = "checkpoint-shard-0";
  auto w = client.write(*vfd, payload.data(), payload.size());
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  EXPECT_EQ(*w, payload.size());
  ASSERT_TRUE(client.fsync(*vfd).ok());
  ASSERT_TRUE(client.close(*vfd).ok());

  EXPECT_EQ(n.pfs_read("ckpt/model.bin"), payload);
  const auto wb = n.node->aggregated_frame().write_back;
  EXPECT_EQ(wb.write_through_sheds, 1u);
  EXPECT_EQ(wb.write_through_bytes, payload.size());
  EXPECT_EQ(wb.dirty_files, 0u);   // nothing pending for the flusher
  EXPECT_EQ(wb.journal_records, 0u);  // no write-back state to journal
}

TEST(WriteShed, MidFileCapacityShedsAndKeepsPrefix) {
  WriteNode n("shed_mid");
  // The first kStoreWrite check (the write-back open) passes; the
  // capacity gate on the first write fires ENOSPC, so the handle
  // sheds mid-file: the locally-written prefix is flushed to the PFS
  // first, then writing continues there.
  FaultGuard fault("store_write:error=capacity:after=1");

  client::HvacClient client(n.copts);
  auto vfd = client.open_write(n.pfs_root + "/ckpt/opt.bin", true);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  auto w1 = client.write(*vfd, "AAAA", 4);
  ASSERT_TRUE(w1.ok()) << w1.error().to_string();
  auto w2 = client.write(*vfd, "BBBB", 4);
  ASSERT_TRUE(w2.ok()) << w2.error().to_string();
  ASSERT_TRUE(client.fsync(*vfd).ok());
  ASSERT_TRUE(client.close(*vfd).ok());

  EXPECT_EQ(n.pfs_read("ckpt/opt.bin"), "AAAABBBB");
  const auto wb = n.node->aggregated_frame().write_back;
  EXPECT_EQ(wb.write_through_sheds, 1u);
  EXPECT_EQ(wb.write_through_bytes, 8u);
  EXPECT_EQ(wb.dirty_files, 0u);
}

TEST(WriteShed, CleanWriteBackLandsOnPfsAndResetsJournal) {
  WriteNode n("clean");
  client::HvacClient client(n.copts);
  auto vfd = client.open_write(n.pfs_root + "/ckpt/w.bin", true);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  const std::string payload(64 * 1024, 'k');
  auto w = client.write(*vfd, payload.data(), payload.size());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(client.fsync(*vfd).ok());
  ASSERT_TRUE(client.close(*vfd).ok());

  // Write-back: the flusher lands the file asynchronously.
  std::string got;
  for (int i = 0; i < 500; ++i) {
    got = n.pfs_read("ckpt/w.bin");
    if (got == payload) break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  const auto wb = n.node->aggregated_frame().write_back;
  EXPECT_EQ(wb.write_through_sheds, 0u);
  EXPECT_GE(wb.writes, 1u);
  EXPECT_GE(wb.fsyncs, 1u);
  // Once every dirty file is flushed the journal checkpoints to empty.
  for (int i = 0; i < 500 && n.node->aggregated_frame().write_back.dirty_files;
       ++i) {
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(n.node->aggregated_frame().write_back.dirty_files, 0u);
  EXPECT_EQ(n.node->aggregated_frame().write_back.journal_records, 0u);
}

// ---- non-truncating opens: partial overwrites must keep old bytes ----

TEST(WritePath, NonTruncatingOpenPreservesExistingPfsContent) {
  WriteNode n("notrunc");
  // An existing 64 KiB PFS file the cache has never seen.
  const std::string rel = "ckpt/resume.bin";
  const std::string original(64 * 1024, 'z');
  fs::create_directories(n.pfs_root + "/ckpt");
  {
    std::ofstream out(n.pfs_root + "/" + rel, std::ios::binary);
    out.write(original.data(),
              static_cast<std::streamsize>(original.size()));
  }

  client::HvacClient client(n.copts);
  auto vfd = client.open_write(n.pfs_root + "/" + rel, false);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  // Partial overwrite in the middle: every byte around it must survive
  // the flusher's whole-file rename onto the PFS (the server prefills
  // the local copy from the PFS on a non-truncating open).
  const std::string patch = "PATCH";
  auto w = client.pwrite(*vfd, patch.data(), patch.size(), 100);
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  ASSERT_TRUE(client.fsync(*vfd).ok());
  ASSERT_TRUE(client.close(*vfd).ok());

  std::string expect = original;
  expect.replace(100, patch.size(), patch);
  std::string got;
  for (int i = 0; i < 500; ++i) {
    got = n.pfs_read(rel);
    if (got == expect) break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(got.size(), expect.size());
  EXPECT_EQ(got, expect);
}

TEST(WritePath, NonTruncatingOpenOfNewFileStartsEmpty) {
  WriteNode n("notrunc_new");
  client::HvacClient client(n.copts);
  // Nothing on the PFS: the open creates the file (O_CREAT semantics —
  // the shim only routes creating opens here).
  auto vfd = client.open_write(n.pfs_root + "/ckpt/new.bin", false);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  auto w = client.write(*vfd, "abc", 3);
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  ASSERT_TRUE(client.fsync(*vfd).ok());
  ASSERT_TRUE(client.close(*vfd).ok());
  std::string got;
  for (int i = 0; i < 500; ++i) {
    got = n.pfs_read("ckpt/new.bin");
    if (got == "abc") break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(got, "abc");
}

// ---- an undrained stop must not purge the local store ----

TEST(WritePath, UndrainedStopKeepsLocalStoreForReplay) {
  // Burst 1 flushes clean (the journal checkpoint-resets to empty),
  // then burst 2 lands while the PFS is down. The graceful stop's
  // drain times out, and the journal now only covers burst 2 — so the
  // local store files must survive the stop. Purging them would make
  // the next start's replay reconstruct a burst-2-only file with a
  // hole where burst 1 was, and rename that over the complete PFS
  // copy.
  auto n = std::make_unique<WriteNode>("undrained");
  const std::string pfs_root = n->pfs_root;
  const std::string cache_root = n->cache_root;
  {
    client::HvacClient client(n->copts);
    auto vfd = client.open_write(pfs_root + "/ckpt/big.bin", true);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    auto w1 = client.write(*vfd, "AAAA", 4);
    ASSERT_TRUE(w1.ok()) << w1.error().to_string();
    ASSERT_TRUE(client.fsync(*vfd).ok());
    // Wait until burst 1 is flushed and the journal has reset.
    for (int i = 0;
         i < 500 && n->node->aggregated_frame().write_back.dirty_files; ++i) {
      ::usleep(10 * 1000);
    }
    ASSERT_EQ(n->node->aggregated_frame().write_back.dirty_files, 0u);

    // PFS down (persistent): burst 2 stays in the store + journal.
    ASSERT_TRUE(fault::configure("pfs_write:error=io").ok());
    auto w2 = client.pwrite(*vfd, "BBBB", 4, 4);
    ASSERT_TRUE(w2.ok()) << w2.error().to_string();
    ASSERT_TRUE(client.fsync(*vfd).ok());  // local durability barrier
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  n->node->stop();  // drain times out; store + journal must survive
  n.reset();
  ASSERT_TRUE(fault::configure("").ok());  // PFS back up

  // Restart on the same cache/journal: replay plus the resumed flush
  // must land the complete file.
  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = cache_root;
  o.instances = 1;
  server::NodeRuntime node2(o);
  ASSERT_TRUE(node2.start().ok());
  std::string got;
  for (int i = 0; i < 500; ++i) {
    std::ifstream in(pfs_root + "/ckpt/big.bin", std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    got = ss.str();
    if (got == "AAAABBBB") break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(got, "AAAABBBB");
  node2.stop();
}

// ---- injected journal faults must surface cleanly, never wedge ----

TEST(WriteJournalFaults, AppendAndFsyncFaultsSurfaceCleanly) {
  const std::string path = temp_dir("faults") + "/j.wal";
  auto j = WriteJournal::open(path);
  ASSERT_TRUE(j.ok());
  {
    FaultGuard f("journal_append:error=io");
    EXPECT_FALSE((*j)->append_write("a", 0, "x", 1).ok());
  }
  {
    FaultGuard f("journal_fsync:error=io");
    EXPECT_TRUE((*j)->append_write("a", 0, "x", 1).ok());
    EXPECT_FALSE((*j)->commit().ok());
  }
  // The journal keeps working after injected failures.
  EXPECT_TRUE((*j)->commit().ok());
}

TEST(WriteJournalFaults, ServerSurvivesJournalAppendFailure) {
  WriteNode n("jfault");
  client::HvacClient client(n.copts);
  auto vfd = client.open_write(n.pfs_root + "/ckpt/j.bin", true);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  {
    // A write the journal could not record must NOT be acked — an ack
    // without a journal record would be a durability lie.
    FaultGuard f("journal_append:error=io");
    EXPECT_FALSE(client.write(*vfd, "xx", 2).ok());
  }
  // The handle (and the server) survive: the next write goes through.
  auto w = client.write(*vfd, "ok", 2);
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  EXPECT_TRUE(client.fsync(*vfd).ok());
  EXPECT_TRUE(client.close(*vfd).ok());
  std::string got;
  for (int i = 0; i < 500; ++i) {
    got = n.pfs_read("ckpt/j.bin");
    if (got == "ok") break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(got, "ok");
}

}  // namespace
}  // namespace hvac
