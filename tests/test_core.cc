// Tests for the HVAC core: hash placement, eviction policies, the
// cache manager's single-copy guarantee, the data-mover FIFO, and the
// client fd table.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "common/stats.h"
#include "core/cache_manager.h"
#include "core/data_mover.h"
#include "core/eviction.h"
#include "core/fd_table.h"
#include "core/placement.h"
#include "rpc/health.h"
#include "storage/posix_file.h"
#include "workload/dataset_spec.h"

namespace hvac::core {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_core_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- placement ------------------------------------------------------------

TEST(Placement, DeterministicAcrossInstances) {
  Placement p1(64), p2(64);
  for (int i = 0; i < 1000; ++i) {
    const std::string path = "class/" + std::to_string(i) + ".jpg";
    EXPECT_EQ(p1.home(path), p2.home(path));
  }
}

TEST(Placement, HomeInRange) {
  for (uint32_t servers : {1u, 2u, 7u, 64u, 4096u}) {
    Placement p(servers);
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(p.home("f" + std::to_string(i)), servers);
    }
  }
}

TEST(Placement, ZeroServersClampedToOne) {
  Placement p(0);
  EXPECT_EQ(p.num_servers(), 1u);
  EXPECT_EQ(p.home("anything"), 0u);
}

TEST(Placement, SingleServerAlwaysZero) {
  Placement p(1, PlacementPolicy::kRendezvous);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.home("f" + std::to_string(i)), 0u);
  }
}

TEST(Placement, ReplicasDistinctAndPrimaryFirst) {
  for (const auto policy :
       {PlacementPolicy::kHashModulo, PlacementPolicy::kRendezvous,
        PlacementPolicy::kJump}) {
    Placement p(16, policy, 3);
    for (int i = 0; i < 300; ++i) {
      const std::string path = "x/" + std::to_string(i);
      const auto homes = p.homes(path);
      ASSERT_EQ(homes.size(), 3u);
      EXPECT_EQ(homes[0], p.home(path));
      EXPECT_NE(homes[0], homes[1]);
      EXPECT_NE(homes[1], homes[2]);
      EXPECT_NE(homes[0], homes[2]);
    }
  }
}

TEST(Placement, ReplicasClampedToServerCount) {
  Placement p(2, PlacementPolicy::kHashModulo, 10);
  EXPECT_EQ(p.replicas(), 2u);
  EXPECT_EQ(p.homes("f").size(), 2u);
}

TEST(Placement, RendezvousMinimalDisruption) {
  // Removing one server (shrinking 17 -> 16) must only move files that
  // were homed on the removed server.
  Placement before(17, PlacementPolicy::kRendezvous);
  Placement after(16, PlacementPolicy::kRendezvous);
  int moved_wrongly = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::string path = "p/" + std::to_string(i);
    const uint32_t b = before.home(path);
    const uint32_t a = after.home(path);
    if (b != 16 && a != b) ++moved_wrongly;
  }
  EXPECT_EQ(moved_wrongly, 0);
}

class PlacementBalance
    : public ::testing::TestWithParam<std::tuple<PlacementPolicy, int>> {};

TEST_P(PlacementBalance, LoadIsBalanced) {
  const auto [policy, servers] = GetParam();
  Placement p(servers, policy);
  std::vector<double> counts(servers, 0);
  constexpr int kFiles = 30000;
  const auto spec = workload::synthetic_small(kFiles, 1024);
  for (int i = 0; i < kFiles; ++i) {
    ++counts[p.home(workload::dataset_file_path(spec, i))];
  }
  // Coefficient of variation of per-server file counts stays small —
  // the paper's Fig 15 "fairly well-balanced distribution".
  EXPECT_LT(coefficient_of_variation(counts), 0.15)
      << placement_policy_name(policy) << " servers=" << servers;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementBalance,
    ::testing::Combine(::testing::Values(PlacementPolicy::kHashModulo,
                                         PlacementPolicy::kRendezvous,
                                         PlacementPolicy::kJump),
                       ::testing::Values(4, 16, 64, 256)));

TEST(Placement, OrderByHealthSinksOpenCircuits) {
  const std::vector<std::string> endpoints = {"10.0.0.1:1", "10.0.0.2:1",
                                              "10.0.0.3:1"};
  rpc::HealthRegistry::global().reset();

  // All circuits closed: the replica order is untouched.
  EXPECT_EQ(order_by_health({2, 0, 1}, endpoints),
            (std::vector<uint32_t>{2, 0, 1}));

  // Trip server 0's breaker: it sinks to the back, the relative order
  // of the healthy servers is preserved (stable), and it is kept —
  // an open circuit is still a better last resort than nothing.
  auto health = rpc::HealthRegistry::global().get(endpoints[0]);
  while (health->state() != rpc::EndpointHealth::State::kOpen) {
    health->record_failure();
  }
  EXPECT_EQ(order_by_health({0, 2, 1}, endpoints),
            (std::vector<uint32_t>{2, 1, 0}));
  EXPECT_EQ(order_by_health({2, 0, 1}, endpoints),
            (std::vector<uint32_t>{2, 1, 0}));

  // Out-of-range indices (stale placement vs a shrunk endpoint list)
  // are left in place rather than dereferenced.
  EXPECT_EQ(order_by_health({7, 1}, endpoints),
            (std::vector<uint32_t>{7, 1}));

  // Recovery: a closed circuit stops sinking.
  health->record_success();
  rpc::HealthRegistry::global().reset();
  EXPECT_EQ(order_by_health({0, 2, 1}, endpoints),
            (std::vector<uint32_t>{0, 2, 1}));
}

// ---- eviction ---------------------------------------------------------------

TEST(Eviction, FifoEvictsOldest) {
  FifoEviction fifo;
  fifo.on_insert("a");
  fifo.on_insert("b");
  fifo.on_insert("c");
  EXPECT_EQ(fifo.select_victim().value(), "a");
  fifo.on_evict("a");
  EXPECT_EQ(fifo.select_victim().value(), "b");
}

TEST(Eviction, LruRespectsAccess) {
  LruEviction lru;
  lru.on_insert("a");
  lru.on_insert("b");
  lru.on_insert("c");
  lru.on_access("a");  // a is now most recent
  EXPECT_EQ(lru.select_victim().value(), "b");
  lru.on_evict("b");
  lru.on_access("c");
  EXPECT_EQ(lru.select_victim().value(), "a");
}

TEST(Eviction, RandomSelectsTrackedEntry) {
  RandomEviction random(123);
  EXPECT_FALSE(random.select_victim().has_value());
  for (int i = 0; i < 20; ++i) random.on_insert("f" + std::to_string(i));
  for (int i = 0; i < 50; ++i) {
    const auto victim = random.select_victim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->rfind("f", 0), 0u);
  }
}

TEST(Eviction, RandomEvictRemovesFromPool) {
  RandomEviction random(7);
  random.on_insert("only");
  random.on_evict("only");
  EXPECT_FALSE(random.select_victim().has_value());
}

TEST(Eviction, DuplicateInsertIgnored) {
  FifoEviction fifo;
  fifo.on_insert("a");
  fifo.on_insert("a");
  fifo.on_evict("a");
  EXPECT_FALSE(fifo.select_victim().has_value());
}

TEST(Eviction, FactoryByName) {
  EXPECT_STREQ(make_eviction_policy("random")->name(), "random");
  EXPECT_STREQ(make_eviction_policy("fifo")->name(), "fifo");
  EXPECT_STREQ(make_eviction_policy("lru")->name(), "lru");
  EXPECT_STREQ(make_eviction_policy("unknown")->name(), "random");
}

// ---- fd table ----------------------------------------------------------------

TEST(FdTable, InsertGetErase) {
  FdTable table;
  FdEntry e;
  e.logical_path = "a.bin";
  e.size = 42;
  const int vfd = table.insert(e);
  EXPECT_GE(vfd, FdTable::kVirtualFdBase);
  EXPECT_TRUE(FdTable::is_virtual(vfd));
  EXPECT_FALSE(FdTable::is_virtual(3));

  const auto got = table.get(vfd);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->logical_path, "a.bin");
  EXPECT_EQ(got->size, 42u);

  ASSERT_TRUE(table.set_offset(vfd, 10).ok());
  EXPECT_EQ(table.get(vfd)->offset, 10u);

  const auto erased = table.erase(vfd);
  ASSERT_TRUE(erased.ok());
  EXPECT_FALSE(table.get(vfd).ok());
  EXPECT_EQ(table.get(vfd).error().code, ErrorCode::kBadFd);
}

TEST(FdTable, DistinctFdsAcrossThreads) {
  FdTable table;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<int> fds;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const int vfd = table.insert(FdEntry{});
        std::lock_guard<std::mutex> lock(mu);
        fds.insert(vfd);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fds.size(), 400u);
  EXPECT_EQ(table.size(), 400u);
}

TEST(FdTable, ReserveOffsetGivesDisjointRangesAcrossThreads) {
  FdTable table;
  const int vfd = table.insert(FdEntry{});
  constexpr int kThreads = 4;
  constexpr int kWrites = 250;
  constexpr uint64_t kCount = 7;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<uint64_t> offsets;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        const auto off = table.reserve_offset(vfd, kCount);
        ASSERT_TRUE(off.ok());
        std::lock_guard<std::mutex> lock(mu);
        offsets.insert(*off);
      }
    });
  }
  for (auto& t : threads) t.join();
  // write(2)-style atomic advance: every reservation starts at a
  // distinct multiple of the write size and nothing is lost.
  EXPECT_EQ(offsets.size(),
            static_cast<size_t>(kThreads) * kWrites);
  for (const uint64_t off : offsets) EXPECT_EQ(off % kCount, 0u);
  EXPECT_EQ(table.get(vfd)->offset,
            static_cast<uint64_t>(kThreads) * kWrites * kCount);
}

TEST(FdTable, RewindOffsetOnlyUndoesTheLatestReservation) {
  FdTable table;
  const int vfd = table.insert(FdEntry{});
  ASSERT_TRUE(table.reserve_offset(vfd, 10).ok());  // [0, 10)
  // Short write of 4 with nothing reserved past us: offset rewinds.
  ASSERT_TRUE(table.rewind_offset(vfd, 10, 4).ok());
  EXPECT_EQ(table.get(vfd)->offset, 4u);
  ASSERT_TRUE(table.reserve_offset(vfd, 10).ok());  // [4, 14)
  ASSERT_TRUE(table.reserve_offset(vfd, 10).ok());  // [14, 24)
  // The first writer's rewind is a no-op: a later reservation already
  // built on top of its range.
  ASSERT_TRUE(table.rewind_offset(vfd, 14, 6).ok());
  EXPECT_EQ(table.get(vfd)->offset, 24u);
}

// ---- cache manager -------------------------------------------------------------

struct CacheFixture {
  std::string pfs_root;
  std::string cache_root;
  std::unique_ptr<storage::PfsBackend> pfs;
  std::unique_ptr<CacheManager> cache;

  explicit CacheFixture(const std::string& name, uint64_t capacity = 0,
                        const std::string& policy = "random") {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    pfs = std::make_unique<storage::PfsBackend>(pfs_root);
    cache = std::make_unique<CacheManager>(
        pfs.get(),
        std::make_unique<storage::LocalStore>(cache_root, capacity),
        make_eviction_policy(policy));
  }

  void put_pfs_file(const std::string& rel, size_t size, uint8_t fill) {
    std::vector<uint8_t> data(size, fill);
    ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, data.data(),
                                    data.size())
                    .ok());
  }
};

TEST(CacheManager, MissThenHit) {
  CacheFixture fx("mth");
  fx.put_pfs_file("a.bin", 500, 0x11);

  EXPECT_FALSE(fx.cache->is_cached("a.bin"));
  const auto first = fx.cache->read_through("a.bin");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 500u);
  EXPECT_TRUE(fx.cache->is_cached("a.bin"));

  const auto second = fx.cache->read_through("a.bin");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);

  const auto m = fx.cache->metrics();
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits, 1u);
  // Only the single PFS->cache copy touched the PFS.
  EXPECT_EQ(fx.pfs->bytes_read(), 500u);
}

TEST(CacheManager, MissingFileSurfacesNotFound) {
  CacheFixture fx("missing");
  const auto r = fx.cache->read_through("nope.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST(CacheManager, SingleCopyUnderConcurrency) {
  CacheFixture fx("single_copy");
  fx.put_pfs_file("hot.bin", 200000, 0x22);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const auto data = fx.cache->read_through("hot.bin");
      if (data.ok() && data->size() == 200000) ++ok;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);

  const auto m = fx.cache->metrics();
  // Exactly one copier; everyone else either waited on the in-flight
  // copy or arrived after it finished.
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits + m.misses, uint64_t(kThreads));
  EXPECT_EQ(fx.pfs->bytes_read(), 200000u);
}

TEST(CacheManager, CapacityTriggersEviction) {
  CacheFixture fx("evict", /*capacity=*/1500, "fifo");
  fx.put_pfs_file("a.bin", 600, 1);
  fx.put_pfs_file("b.bin", 600, 2);
  fx.put_pfs_file("c.bin", 600, 3);

  ASSERT_TRUE(fx.cache->read_through("a.bin").ok());
  ASSERT_TRUE(fx.cache->read_through("b.bin").ok());
  ASSERT_TRUE(fx.cache->read_through("c.bin").ok());  // evicts a (FIFO)

  EXPECT_FALSE(fx.cache->is_cached("a.bin"));
  EXPECT_TRUE(fx.cache->is_cached("b.bin"));
  EXPECT_TRUE(fx.cache->is_cached("c.bin"));
  EXPECT_EQ(fx.cache->metrics().evictions, 1u);
}

TEST(CacheManager, OversizedFileFallsBackToPfs) {
  CacheFixture fx("oversize", /*capacity=*/1000);
  fx.put_pfs_file("big.bin", 5000, 7);
  const auto data = fx.cache->read_through("big.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 5000u);
  EXPECT_FALSE(fx.cache->is_cached("big.bin"));
  const auto m = fx.cache->metrics();
  EXPECT_EQ(m.pfs_fallbacks, 1u);
  EXPECT_EQ(m.misses, 0u);
}

TEST(CacheManager, PreadThroughOffsets) {
  CacheFixture fx("pread");
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i % 256);
  ASSERT_TRUE(storage::write_file(fx.pfs_root + "/f.bin", data.data(),
                                  data.size())
                  .ok());
  uint8_t buf[10];
  const auto n = fx.cache->pread_through("f.bin", buf, sizeof(buf), 300);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
  EXPECT_EQ(buf[0], 300 % 256);
  EXPECT_TRUE(fx.cache->is_cached("f.bin"));
}

TEST(CacheManager, ExplicitEvictAndPurge) {
  CacheFixture fx("explicit");
  fx.put_pfs_file("a.bin", 100, 1);
  ASSERT_TRUE(fx.cache->read_through("a.bin").ok());
  ASSERT_TRUE(fx.cache->evict("a.bin").ok());
  EXPECT_FALSE(fx.cache->is_cached("a.bin"));
  EXPECT_FALSE(fx.cache->evict("a.bin").ok());  // not cached now

  ASSERT_TRUE(fx.cache->read_through("a.bin").ok());
  fx.cache->purge();
  EXPECT_FALSE(fx.cache->is_cached("a.bin"));
  EXPECT_EQ(fx.cache->store().bytes_used(), 0u);
}

TEST(CacheManager, CachedContentMatchesPfsBytes) {
  CacheFixture fx("content");
  std::vector<uint8_t> data(3000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = uint8_t((i * 31) % 256);
  }
  ASSERT_TRUE(storage::write_file(fx.pfs_root + "/pat.bin", data.data(),
                                  data.size())
                  .ok());
  const auto through = fx.cache->read_through("pat.bin");
  ASSERT_TRUE(through.ok());
  EXPECT_EQ(*through, data);
  // Second read (hit) also matches.
  EXPECT_EQ(*fx.cache->read_through("pat.bin"), data);
}

// ---- data mover ----------------------------------------------------------------

TEST(DataMover, FetchCachesFile) {
  CacheFixture fx("mover1");
  fx.put_pfs_file("a.bin", 100, 1);
  DataMover mover(fx.cache.get());
  const auto cached = mover.fetch("a.bin");
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(*cached);
  EXPECT_TRUE(fx.cache->is_cached("a.bin"));
}

TEST(DataMover, ManyConcurrentSubmitsAllResolve) {
  CacheFixture fx("mover2");
  for (int i = 0; i < 20; ++i) {
    fx.put_pfs_file("f" + std::to_string(i) + ".bin", 50, uint8_t(i));
  }
  DataMover mover(fx.cache.get(), /*movers=*/2);
  std::vector<std::shared_future<Result<bool>>> futures;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      futures.push_back(mover.submit("f" + std::to_string(i) + ".bin"));
    }
  }
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r);
  }
  EXPECT_EQ(fx.cache->metrics().misses, 20u);
}

TEST(DataMover, SubmitAfterShutdownResolvesCancelled) {
  CacheFixture fx("mover3");
  DataMover mover(fx.cache.get());
  mover.shutdown();
  const auto r = mover.submit("whatever").get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kCancelled);
}

TEST(DataMover, FetchErrorPropagates) {
  CacheFixture fx("mover4");
  DataMover mover(fx.cache.get());
  const auto r = mover.fetch("does_not_exist.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace hvac::core
