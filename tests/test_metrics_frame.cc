// Metrics frame v2: encode/decode round trips, v1<->v2 cross-version
// decoding, histogram bucket boundaries and percentile estimation, and
// multi-instance aggregation through NodeRuntime::aggregated_frame.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "client/hvac_client.h"
#include "core/metrics.h"
#include "core/metrics_frame.h"
#include "rpc/rpc_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

using core::kLatencyBuckets;
using core::LatencyHistogram;
using core::LatencySnapshot;
using core::MetricsFrame;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

MetricsFrame sample_frame() {
  MetricsFrame f;
  f.cache.hits = 10;
  f.cache.misses = 3;
  f.cache.dedup_waits = 1;
  f.cache.evictions = 2;
  f.cache.bytes_from_cache = 4096;
  f.cache.bytes_from_pfs = 1024;
  f.cache.pfs_fallbacks = 1;
  f.open_fds = 7;
  f.handle_cache = {5, 2, 4, 1, 3, 128};
  f.buffer_pool = {100, 90, 10, 80, 5};
  f.readahead = {40, 30, 6};
  f.zerocopy = {50, 8, 3, 1 << 20, 1 << 16, 2};
  f.meta_cache = {25, 9, 4, 2};
  f.reactor.reactors = {{6, 100, 12, 3}, {2, 40, 0, 1}};
  // epoch, reads, total, local_hit, remote_rpc, pfs_wait, backpressure,
  // retry — buckets sum to total by construction.
  f.stall.epochs = {{1, 100, 5000, 1000, 2000, 1500, 400, 100}};
  LatencySnapshot lat;
  lat.count = 2;
  lat.total_ns = 3000;
  lat.buckets[10] = 2;
  f.op_latency[proto::kRead] = lat;
  return f;
}

TEST(MetricsFrame, EncodeDecodeRoundTrip) {
  const MetricsFrame f = sample_frame();
  const auto decoded = MetricsFrame::decode(f.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->version, core::kFrameVersion);
  EXPECT_EQ(decoded->cache.hits, 10u);
  EXPECT_EQ(decoded->cache.misses, 3u);
  EXPECT_EQ(decoded->cache.bytes_from_cache, 4096u);
  EXPECT_EQ(decoded->open_fds, 7u);
  EXPECT_EQ(decoded->handle_cache.hits, 5u);
  EXPECT_EQ(decoded->handle_cache.pinned, 1u);
  EXPECT_EQ(decoded->handle_cache.deferred_closes, 3u);
  EXPECT_EQ(decoded->buffer_pool.leases, 100u);
  EXPECT_EQ(decoded->buffer_pool.fallback_allocs, 10u);
  EXPECT_EQ(decoded->readahead.issued, 40u);
  EXPECT_EQ(decoded->readahead.wasted, 6u);
  EXPECT_EQ(decoded->zerocopy.sendfile_sends, 50u);
  EXPECT_EQ(decoded->zerocopy.sendfile_bytes, uint64_t{1} << 20);
  EXPECT_EQ(decoded->zerocopy.short_resumes, 2u);
  EXPECT_EQ(decoded->meta_cache.hits, 25u);
  EXPECT_EQ(decoded->meta_cache.invalidated, 2u);
  ASSERT_EQ(decoded->reactor.reactors.size(), 2u);
  EXPECT_EQ(decoded->reactor.reactors[0].conns, 6u);
  EXPECT_EQ(decoded->reactor.reactors[0].requests, 100u);
  EXPECT_EQ(decoded->reactor.reactors[0].steals, 12u);
  EXPECT_EQ(decoded->reactor.reactors[1].shed, 1u);
  ASSERT_EQ(decoded->op_latency.count(proto::kRead), 1u);
  const LatencySnapshot& lat = decoded->op_latency.at(proto::kRead);
  EXPECT_EQ(lat.count, 2u);
  EXPECT_EQ(lat.total_ns, 3000u);
  EXPECT_EQ(lat.buckets[10], 2u);
  ASSERT_EQ(decoded->stall.epochs.size(), 1u);
  EXPECT_EQ(decoded->stall.epochs[0].epoch, 1u);
  EXPECT_EQ(decoded->stall.epochs[0].reads, 100u);
  EXPECT_EQ(decoded->stall.epochs[0].total_ns, 5000u);
  EXPECT_EQ(decoded->stall.epochs[0].remote_rpc_ns, 2000u);
  EXPECT_EQ(decoded->stall.epochs[0].retry_ns, 100u);
}

TEST(MetricsFrame, V1ClientDecodesV2Prefix) {
  // A v1-era decoder reads eight bare u64 words and ignores whatever
  // follows — the v2 frame must serve it the original counters.
  const MetricsFrame f = sample_frame();
  const Bytes encoded = f.encode();
  WireReader r(encoded);
  uint64_t v[8] = {0};
  for (auto& x : v) {
    auto got = r.get_u64();
    ASSERT_TRUE(got.ok());
    x = *got;
  }
  EXPECT_EQ(v[0], f.cache.hits);
  EXPECT_EQ(v[1], f.cache.misses);
  EXPECT_EQ(v[2], f.cache.dedup_waits);
  EXPECT_EQ(v[3], f.cache.evictions);
  EXPECT_EQ(v[4], f.cache.bytes_from_cache);
  EXPECT_EQ(v[5], f.cache.bytes_from_pfs);
  EXPECT_EQ(v[6], f.cache.pfs_fallbacks);
  EXPECT_EQ(v[7], f.open_fds);
}

TEST(MetricsFrame, V2ClientDecodesV1Frame) {
  // A legacy server sends exactly eight words and no magic.
  WireWriter w;
  for (uint64_t i = 1; i <= 8; ++i) w.put_u64(i * 11);
  const auto decoded = MetricsFrame::decode(w.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, 1u);
  EXPECT_EQ(decoded->cache.hits, 11u);
  EXPECT_EQ(decoded->cache.pfs_fallbacks, 77u);
  EXPECT_EQ(decoded->open_fds, 88u);
  // v2-only sections default to zero rather than garbage.
  EXPECT_EQ(decoded->handle_cache.hits, 0u);
  EXPECT_EQ(decoded->buffer_pool.leases, 0u);
  EXPECT_EQ(decoded->readahead.issued, 0u);
  EXPECT_TRUE(decoded->op_latency.empty());
}

TEST(MetricsFrame, TruncatedPrefixIsError) {
  WireWriter w;
  w.put_u64(1);
  EXPECT_FALSE(MetricsFrame::decode(w.bytes()).ok());
}

TEST(MetricsFrame, UnknownSectionsAndExtraFieldsAreSkipped) {
  // A frame from a *newer* build: an unknown section id, plus a
  // read-ahead section that grew an extra trailing field. Both must
  // decode cleanly with today's schema.
  WireWriter w;
  for (uint64_t i = 1; i <= 8; ++i) w.put_u64(i);
  w.put_u32(core::kMetricsFrameMagic);
  w.put_u16(3);  // a future version
  w.put_u16(2);  // two sections
  {
    WireWriter s;  // unknown section id 99
    s.put_u64(0xdeadbeef);
    w.put_u16(99);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;  // read-ahead with one extra future field
    s.put_u64(4);
    s.put_u64(3);
    s.put_u64(2);
    s.put_u64(999);
    w.put_u16(core::kSectionReadAhead);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  const auto decoded = MetricsFrame::decode(w.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, 3u);
  EXPECT_EQ(decoded->readahead.issued, 4u);
  EXPECT_EQ(decoded->readahead.consumed, 3u);
  EXPECT_EQ(decoded->readahead.wasted, 2u);
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 9u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(uint64_t{1} << 39), 39u);
  // Everything past the last bucket clamps instead of overflowing.
  EXPECT_EQ(LatencyHistogram::bucket_of(uint64_t{1} << 40),
            kLatencyBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(~uint64_t{0}), kLatencyBuckets - 1);
}

TEST(LatencyHistogramTest, RecordAndPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1000);       // bucket 9: [512, 1024)
  h.record(uint64_t{1} << 20);                       // one ~1ms outlier
  const LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.buckets[9], 99u);
  EXPECT_EQ(s.buckets[20], 1u);
  const double p50 = s.percentile_ns(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  // p99 still lands in the dense bucket (rank 100 is the outlier).
  EXPECT_LE(s.percentile_ns(98), 1024.0);
  const double p100 = s.percentile_ns(100);
  EXPECT_GE(p100, double(uint64_t{1} << 20));
  EXPECT_GT(s.mean_ns(), 1000.0);
}

TEST(MetricsFrame, MergeSumsSections) {
  MetricsFrame a = sample_frame();
  const MetricsFrame b = sample_frame();
  a.merge(b);
  EXPECT_EQ(a.cache.hits, 20u);
  EXPECT_EQ(a.open_fds, 14u);
  EXPECT_EQ(a.handle_cache.deferred_closes, 6u);
  EXPECT_EQ(a.buffer_pool.leases, 200u);
  EXPECT_EQ(a.readahead.consumed, 60u);
  EXPECT_EQ(a.zerocopy.sendfile_sends, 100u);
  EXPECT_EQ(a.meta_cache.hits, 50u);
  // Reactor rows merge element-wise by index (instance A reactor i +
  // instance B reactor i).
  ASSERT_EQ(a.reactor.reactors.size(), 2u);
  EXPECT_EQ(a.reactor.reactors[0].requests, 200u);
  EXPECT_EQ(a.reactor.reactors[1].conns, 4u);
  EXPECT_EQ(a.op_latency.at(proto::kRead).count, 4u);
  EXPECT_EQ(a.op_latency.at(proto::kRead).buckets[10], 4u);
  // Stall rows merge by epoch id (same epoch observed on two clients).
  ASSERT_EQ(a.stall.epochs.size(), 1u);
  EXPECT_EQ(a.stall.epochs[0].epoch, 1u);
  EXPECT_EQ(a.stall.epochs[0].reads, 200u);
  EXPECT_EQ(a.stall.epochs[0].total_ns, 10000u);
  EXPECT_EQ(a.stall.epochs[0].pfs_wait_ns, 3000u);
}

TEST(MetricsFrame, StallMergeKeepsDistinctEpochs) {
  MetricsFrame a;
  a.stall.epochs = {{1, 10, 100, 100, 0, 0, 0, 0}};
  MetricsFrame b;
  b.stall.epochs = {{1, 5, 50, 0, 50, 0, 0, 0},
                    {2, 7, 70, 0, 0, 70, 0, 0}};
  a.merge(b);
  ASSERT_EQ(a.stall.epochs.size(), 2u);
  EXPECT_EQ(a.stall.epochs[0].epoch, 1u);
  EXPECT_EQ(a.stall.epochs[0].reads, 15u);
  EXPECT_EQ(a.stall.epochs[0].total_ns, 150u);
  EXPECT_EQ(a.stall.epochs[0].remote_rpc_ns, 50u);
  EXPECT_EQ(a.stall.epochs[1].epoch, 2u);
  EXPECT_EQ(a.stall.epochs[1].pfs_wait_ns, 70u);
}

TEST(MetricsFrame, ReactorMergeHandlesRaggedCounts) {
  // Frames from servers running different reactor counts: the merged
  // row set is the longer of the two, missing rows count as zero.
  MetricsFrame a;
  a.reactor.reactors = {{1, 10, 0, 0}};
  MetricsFrame b;
  b.reactor.reactors = {{2, 20, 5, 1}, {3, 30, 6, 2}};
  a.merge(b);
  ASSERT_EQ(a.reactor.reactors.size(), 2u);
  EXPECT_EQ(a.reactor.reactors[0].conns, 3u);
  EXPECT_EQ(a.reactor.reactors[0].requests, 30u);
  EXPECT_EQ(a.reactor.reactors[1].requests, 30u);
  EXPECT_EQ(a.reactor.reactors[1].steals, 6u);
}

TEST(MetricsFrame, ReactorSectionCrossVersionRoundTrip) {
  // A reactor section from a *future* build whose rows grew a fifth
  // word: today's decoder must read the four fields it knows and skip
  // the tail of every row.
  WireWriter w;
  for (uint64_t i = 1; i <= 8; ++i) w.put_u64(i);
  w.put_u32(core::kMetricsFrameMagic);
  w.put_u16(core::kFrameVersion);
  w.put_u16(1);  // one section
  {
    WireWriter s;
    s.put_u16(2);  // two reactors
    s.put_u16(5);  // five words per row (one unknown to this build)
    for (uint64_t r = 0; r < 2; ++r) {
      s.put_u64(10 + r);  // conns
      s.put_u64(20 + r);  // requests
      s.put_u64(30 + r);  // steals
      s.put_u64(40 + r);  // shed
      s.put_u64(0xabcd);  // the future field
    }
    w.put_u16(core::kSectionReactors);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  const auto decoded = MetricsFrame::decode(w.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded->reactor.reactors.size(), 2u);
  EXPECT_EQ(decoded->reactor.reactors[0].conns, 10u);
  EXPECT_EQ(decoded->reactor.reactors[1].requests, 21u);
  EXPECT_EQ(decoded->reactor.reactors[1].shed, 41u);

  // And the symmetric direction: a frame encoded by this build whose
  // sections an *older* decoder does not know — the old decode path is
  // the unknown-id skip, proven by re-encoding and checking a frame
  // with the reactor section still yields every other section intact.
  const auto again = MetricsFrame::decode(decoded->encode());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->reactor.reactors.size(), 2u);
  EXPECT_EQ(again->reactor.reactors[0].steals, 30u);
  EXPECT_EQ(again->cache.hits, 1u);
  EXPECT_EQ(again->open_fds, 8u);
}

TEST(MetricsFrame, StallSectionCrossVersionRoundTrip) {
  // A stall section from a *future* build whose rows grew a ninth
  // word: today's decoder must read the eight fields it knows and skip
  // the tail of every row.
  WireWriter w;
  for (uint64_t i = 1; i <= 8; ++i) w.put_u64(i);
  w.put_u32(core::kMetricsFrameMagic);
  w.put_u16(core::kFrameVersion);
  w.put_u16(1);  // one section
  {
    WireWriter s;
    s.put_u16(2);  // two epochs
    s.put_u16(9);  // nine words per row (one unknown to this build)
    for (uint64_t r = 0; r < 2; ++r) {
      s.put_u64(1 + r);    // epoch
      s.put_u64(100 + r);  // reads
      s.put_u64(500 + r);  // total_ns
      s.put_u64(100);      // local_hit_ns
      s.put_u64(200);      // remote_rpc_ns
      s.put_u64(150);      // pfs_wait_ns
      s.put_u64(40);       // backpressure_ns
      s.put_u64(10 + r);   // retry_ns
      s.put_u64(0xabcd);   // the future field
    }
    w.put_u16(core::kSectionStall);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  const auto decoded = MetricsFrame::decode(w.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded->stall.epochs.size(), 2u);
  EXPECT_EQ(decoded->stall.epochs[0].epoch, 1u);
  EXPECT_EQ(decoded->stall.epochs[0].reads, 100u);
  EXPECT_EQ(decoded->stall.epochs[1].total_ns, 501u);
  EXPECT_EQ(decoded->stall.epochs[1].retry_ns, 11u);

  // Re-encoding with today's schema keeps both the stall rows and the
  // legacy prefix intact.
  const auto again = MetricsFrame::decode(decoded->encode());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->stall.epochs.size(), 2u);
  EXPECT_EQ(again->stall.epochs[1].remote_rpc_ns, 200u);
  EXPECT_EQ(again->cache.hits, 1u);
  EXPECT_EQ(again->open_fds, 8u);
}

TEST(MetricsFrame, JsonSpellsOutEverySection) {
  const std::string json = sample_frame().to_json();
  for (const char* key :
       {"\"version\":2", "\"cache\"", "\"handle_cache\"", "\"buffer_pool\"",
        "\"read_ahead\"", "\"latency_us\"", "\"read\"", "\"p50\"",
        "\"p99\"", "\"deferred_closes\":3", "\"wasted\":6",
        "\"zero_copy\"", "\"sendfile_sends\":50",
        "\"meta_cache\"", "\"invalidated\":2",
        "\"reactors\"", "\"steals\":12",
        "\"stall\"", "\"pfs_wait_s\"", "\"retry_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---- end to end: live instances -> aggregated frame -----------------------

TEST(MetricsFrameAggregation, NodeRuntimeAggregatesInstances) {
  namespace fs = std::filesystem;
  const std::string suffix = std::to_string(::getpid());
  const std::string pfs_root = ::testing::TempDir() + "hvac_mf_pfs_" + suffix;
  const std::string cache_root =
      ::testing::TempDir() + "hvac_mf_cache_" + suffix;
  fs::remove_all(pfs_root);
  fs::remove_all(cache_root);
  const auto spec = workload::synthetic_small(12, 4096, 0.3);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = cache_root;
  o.instances = 2;
  server::NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();
  // Keep reads synchronous so no read-ahead RPC is still in flight
  // when the frames are sampled below, and disable the meta cache so
  // round two really re-opens (the exact per-op counts below depend on
  // every round hitting the server).
  copts.readahead_chunks = 0;
  copts.meta_ttl_ms = 0;
  client::HvacClient client(copts);

  std::vector<uint8_t> buf(8192);
  for (const auto& rel : tree->relative_paths) {
    for (int round = 0; round < 2; ++round) {
      auto vfd = client.open(pfs_root + "/" + rel);
      ASSERT_TRUE(vfd.ok());
      ASSERT_TRUE(client.read(*vfd, buf.data(), buf.size()).ok());
      ASSERT_TRUE(client.close(*vfd).ok());
    }
  }

  // The open/read path serves whole files; the pinned-handle cache sits
  // under segment reads. Hit the same segment twice on one instance so
  // its counters move deterministically (first pin misses, second hits).
  {
    rpc::RpcClient direct(rpc::Endpoint{node.endpoints()[0]},
                          rpc::RpcClientOptions{2000, 10000});
    for (int round = 0; round < 2; ++round) {
      WireWriter w;
      w.put_string(tree->relative_paths[0]);
      w.put_u64(0);     // segment index
      w.put_u64(1024);  // segment bytes
      w.put_u64(0);     // offset in segment
      w.put_u32(512);
      ASSERT_TRUE(direct.call(proto::kReadSegment, w.bytes()).ok());
    }
  }

  const MetricsFrame total = node.aggregated_frame();
  EXPECT_EQ(total.version, core::kFrameVersion);
  // Round one misses, round two hits — across both instances — plus one
  // miss/hit pair from the segment cached above.
  EXPECT_EQ(total.cache.misses, tree->relative_paths.size() + 1);
  EXPECT_EQ(total.cache.hits, tree->relative_paths.size() + 1);
  // The segment reads went through the pinned-handle cache.
  EXPECT_GE(total.handle_cache.misses, 1u);
  EXPECT_GE(total.handle_cache.hits, 1u);
  // Every open/read/close pair shows up in the per-op histograms.
  ASSERT_EQ(total.op_latency.count(proto::kRead), 1u);
  EXPECT_EQ(total.op_latency.at(proto::kRead).count,
            2 * tree->relative_paths.size());
  ASSERT_EQ(total.op_latency.count(proto::kOpen), 1u);
  EXPECT_GT(total.op_latency.at(proto::kOpen).percentile_ns(99), 0.0);

  // Process-global sections must not double-count across the two
  // co-resident instances: the aggregate equals a single instance's
  // view, not the sum of both.
  const MetricsFrame one = node.instance(0).metrics_frame();
  EXPECT_EQ(total.buffer_pool.leases, one.buffer_pool.leases);
  EXPECT_EQ(total.readahead.issued, one.readahead.issued);

  // The wire round trip preserves the aggregate.
  const auto decoded = MetricsFrame::decode(total.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->cache.hits, total.cache.hits);
  EXPECT_EQ(decoded->op_latency.at(proto::kRead).count,
            total.op_latency.at(proto::kRead).count);

  node.stop();
  fs::remove_all(pfs_root);
  fs::remove_all(cache_root);
}

}  // namespace
}  // namespace hvac
