// Helper binary for the LD_PRELOAD tests. Behaves like an unmodified
// application: plain POSIX open/fstat/read/lseek/close on the paths
// given in argv, printing "<path> <size> <fnv64>" per file. When run
// under libhvac_intercept.so with HVAC_* env set, the exact same
// binary is served by the cache — the output must not change.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string_view>
#include <vector>

namespace {

uint64_t fnv1a(const uint8_t* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

namespace {

// stdio variant: fopen/fseek/fread/fclose (the buffered path many
// Python-based loaders take).
int run_stdio(const char* path) {
  FILE* f = ::fopen(path, "rb");
  if (f == nullptr) {
    std::printf("%s ERROR fopen\n", path);
    return 1;
  }
  if (::fseek(f, 0, SEEK_END) != 0) {
    std::printf("%s ERROR fseek\n", path);
    ::fclose(f);
    return 1;
  }
  const long size = ::ftell(f);
  ::rewind(f);
  uint64_t h = 0xcbf29ce484222325ULL;
  uint64_t total = 0;
  std::vector<uint8_t> buf(4096);
  for (;;) {
    const size_t n = ::fread(buf.data(), 1, buf.size(), f);
    if (n == 0) break;
    h = fnv1a(buf.data(), n, h);
    total += n;
  }
  if (::fclose(f) != 0) {
    std::printf("%s ERROR fclose\n", path);
    return 1;
  }
  if (size >= 0 && total != uint64_t(size)) {
    std::printf("%s ERROR ftell size mismatch\n", path);
    return 1;
  }
  std::printf("%s %" PRIu64 " %016" PRIx64 "\n", path, total, h);
  return 0;
}

// Write variant: plain open(O_WRONLY|O_CREAT|O_TRUNC) + write +
// fsync + close of SRC's bytes into DST — the checkpoint shape. Under
// the shim DST lands in the write-back tier and is flushed to the PFS
// asynchronously; the caller compares the files once the server
// stopped gracefully.
int run_copy(const char* src, const char* dst) {
  const int in = ::open(src, O_RDONLY);
  if (in < 0) {
    std::printf("%s ERROR open src\n", src);
    return 1;
  }
  const int out = ::open(dst, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) {
    std::printf("%s ERROR open dst\n", dst);
    ::close(in);
    return 1;
  }
  std::vector<uint8_t> buf(65536);
  uint64_t total = 0;
  for (;;) {
    const ssize_t n = ::read(in, buf.data(), buf.size());
    if (n < 0) {
      std::printf("%s ERROR read\n", src);
      return 1;
    }
    if (n == 0) break;
    ssize_t done = 0;
    while (done < n) {
      const ssize_t w = ::write(out, buf.data() + done, n - done);
      if (w <= 0) {
        std::printf("%s ERROR write\n", dst);
        return 1;
      }
      done += w;
    }
    total += static_cast<uint64_t>(n);
  }
  if (::fsync(out) != 0) {
    std::printf("%s ERROR fsync\n", dst);
    return 1;
  }
  ::close(in);
  if (::close(out) != 0) {
    std::printf("%s ERROR close\n", dst);
    return 1;
  }
  std::printf("%s %" PRIu64 " copied\n", dst, total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int first = 1;
  bool stdio_mode = false;
  if (argc == 4 && std::string_view(argv[1]) == "--copy") {
    return run_copy(argv[2], argv[3]);
  }
  if (argc > 1 && std::string_view(argv[1]) == "--stdio") {
    stdio_mode = true;
    first = 2;
  }
  if (stdio_mode) {
    int rc = 0;
    for (int i = first; i < argc; ++i) rc |= run_stdio(argv[i]);
    return rc;
  }
  for (int i = first; i < argc; ++i) {
    const char* path = argv[i];
    const int fd = ::open(path, O_RDONLY);
    if (fd < 0) {
      std::printf("%s ERROR open\n", path);
      continue;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      std::printf("%s ERROR fstat\n", path);
      ::close(fd);
      continue;
    }
    // Exercise lseek: skip the first byte, then rewind.
    if (::lseek(fd, 1, SEEK_SET) != 1 || ::lseek(fd, 0, SEEK_SET) != 0) {
      std::printf("%s ERROR lseek\n", path);
      ::close(fd);
      continue;
    }
    uint64_t h = 0xcbf29ce484222325ULL;
    uint64_t total = 0;
    std::vector<uint8_t> buf(8192);
    for (;;) {
      const ssize_t n = ::read(fd, buf.data(), buf.size());
      if (n < 0) {
        std::printf("%s ERROR read\n", path);
        break;
      }
      if (n == 0) break;
      h = fnv1a(buf.data(), static_cast<size_t>(n), h);
      total += static_cast<uint64_t>(n);
    }
    if (::close(fd) != 0) {
      std::printf("%s ERROR close\n", path);
      continue;
    }
    std::printf("%s %" PRIu64 " %016" PRIx64 "\n", path, total, h);
  }
  return 0;
}
