// Tests for the RPC substrate: wire format, frame protocol, transport
// and the client/server pair (the Mercury-equivalent layer).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/buffer_pool.h"
#include "common/fault_injection.h"
#include "rpc/protocol.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {
namespace {

// ---- wire -----------------------------------------------------------------

TEST(Wire, RoundTripScalars) {
  WireWriter w;
  w.put_u8(7);
  w.put_u16(65535);
  w.put_u32(123456789);
  w.put_u64(0xdeadbeefcafebabeULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 7);
  EXPECT_EQ(r.get_u16().value(), 65535);
  EXPECT_EQ(r.get_u32().value(), 123456789u);
  EXPECT_EQ(r.get_u64().value(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.get_i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64().value(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, RoundTripStringAndBlob) {
  WireWriter w;
  w.put_string("hello/world.bin");
  const uint8_t blob[] = {1, 2, 3, 4, 5};
  w.put_blob(blob, sizeof(blob));
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "hello/world.bin");
  const Bytes b = r.get_blob().value();
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[4], 5);
}

TEST(Wire, EmptyString) {
  WireWriter w;
  w.put_string("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "");
}

TEST(Wire, TruncatedReadsFailWithProtocol) {
  WireWriter w;
  w.put_u32(7);
  WireReader r(w.bytes());
  EXPECT_TRUE(r.get_u32().ok());
  const auto fail = r.get_u64();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, ErrorCode::kProtocol);
}

TEST(Wire, OversizedStringLengthRejected) {
  WireWriter w;
  w.put_u32(1u << 30);  // claims 1 GiB follows; nothing does
  WireReader r(w.bytes());
  const auto s = r.get_string();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kProtocol);
}

// ---- protocol ----------------------------------------------------------------

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader h;
  h.payload_len = 1234;
  h.request_id = 0xabcdef;
  h.opcode = 42;
  h.kind = FrameKind::kResponse;
  h.status = ErrorCode::kNotFound;
  uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  const auto d = decode_header(buf, kHeaderSize);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->payload_len, 1234u);
  EXPECT_EQ(d->request_id, 0xabcdefULL);
  EXPECT_EQ(d->opcode, 42);
  EXPECT_EQ(d->kind, FrameKind::kResponse);
  EXPECT_EQ(d->status, ErrorCode::kNotFound);
}

TEST(Protocol, BadMagicRejected) {
  uint8_t buf[kHeaderSize] = {0};
  const auto d = decode_header(buf, kHeaderSize);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error().code, ErrorCode::kProtocol);
}

TEST(Protocol, OversizedFrameRejected) {
  FrameHeader h;
  h.payload_len = kMaxFrame + 1;
  uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  EXPECT_FALSE(decode_header(buf, kHeaderSize).ok());
}

// ---- endpoint -----------------------------------------------------------------

TEST(Endpoint, HostPortParsing) {
  Endpoint e{"127.0.0.1:8080"};
  const auto hp = e.host_port();
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 8080);
  EXPECT_FALSE(Endpoint{"nohost"}.host_port().ok());
  EXPECT_FALSE(Endpoint{"h:99999"}.host_port().ok());
}

TEST(Endpoint, UnixDetection) {
  Endpoint u{"unix:/tmp/x.sock"};
  EXPECT_TRUE(u.is_unix());
  EXPECT_EQ(u.unix_path(), "/tmp/x.sock");
  EXPECT_FALSE(Endpoint{"127.0.0.1:1"}.is_unix());
}

// ---- client/server integration -----------------------------------------------

class RpcFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.register_handler(1, [](const Bytes& req) -> Result<Bytes> {
      Bytes out = req;  // echo
      return out;
    });
    server_.register_handler(2, [](const Bytes&) -> Result<Bytes> {
      return Error(ErrorCode::kNotFound, "nope");
    });
    server_.register_handler(3, [this](const Bytes&) -> Result<Bytes> {
      ++slow_calls_;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      return Bytes{9};
    });
    ASSERT_TRUE(server_.start().ok());
  }

  RpcServer server_{RpcServerOptions{"127.0.0.1:0", 4}};
  std::atomic<int> slow_calls_{0};
};

TEST_F(RpcFixture, Echo) {
  RpcClient client(server_.endpoint());
  Bytes msg{1, 2, 3, 4};
  const auto resp = client.call(1, msg);
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(*resp, msg);
}

TEST_F(RpcFixture, EmptyPayloadEcho) {
  RpcClient client(server_.endpoint());
  const auto resp = client.call(1, Bytes{});
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->empty());
}

TEST_F(RpcFixture, HandlerErrorPropagatesCodeAndMessage) {
  RpcClient client(server_.endpoint());
  const auto resp = client.call(2, Bytes{});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(resp.error().message, "nope");
}

TEST_F(RpcFixture, UnknownOpcodeIsUnimplemented) {
  RpcClient client(server_.endpoint());
  const auto resp = client.call(99, Bytes{});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kUnimplemented);
}

TEST_F(RpcFixture, LargePayloadRoundTrip) {
  RpcClient client(server_.endpoint());
  Bytes big(3u << 20);  // 3 MiB
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  const auto resp = client.call(1, big);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, big);
}

TEST_F(RpcFixture, SequentialCallsReuseConnection) {
  RpcClient client(server_.endpoint());
  for (int i = 0; i < 50; ++i) {
    Bytes msg{static_cast<uint8_t>(i)};
    const auto resp = client.call(1, msg);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ((*resp)[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(server_.requests_served(), 50u);
}

TEST_F(RpcFixture, ConcurrentClientsAreServed) {
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &ok] {
      RpcClient client(server_.endpoint());
      for (int i = 0; i < 20; ++i) {
        Bytes msg{static_cast<uint8_t>(c), static_cast<uint8_t>(i)};
        const auto resp = client.call(1, msg);
        if (resp.ok() && *resp == msg) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 20);
}

TEST_F(RpcFixture, SlowHandlersRunInParallel) {
  // 4 handler threads, 4 concurrent 30ms calls: wall clock must be
  // well under 4 x 30ms.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([this] {
      RpcClient client(server_.endpoint());
      EXPECT_TRUE(client.call(3, Bytes{}).ok());
    });
  }
  for (auto& t : threads) t.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(slow_calls_.load(), 4);
  EXPECT_LT(ms, 110.0);
}

TEST_F(RpcFixture, ReconnectAfterDisconnect) {
  RpcClient client(server_.endpoint());
  ASSERT_TRUE(client.call(1, Bytes{1}).ok());
  client.disconnect();
  const auto resp = client.call(1, Bytes{2});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ((*resp)[0], 2);
}

TEST(RpcServer, ConnectToDeadServerIsUnavailable) {
  // Grab a free port, then close the listener before dialing it.
  Endpoint bound;
  {
    auto fd = listen_on(Endpoint{"127.0.0.1:0"}, &bound);
    ASSERT_TRUE(fd.ok());
  }
  RpcClient client(bound, RpcClientOptions{200, 200});
  const auto resp = client.call(1, Bytes{});
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.error().code == ErrorCode::kUnavailable ||
              resp.error().code == ErrorCode::kTimeout);
}

TEST(RpcServer, ServerStopThenCallFails) {
  auto server = std::make_unique<RpcServer>(RpcServerOptions{"127.0.0.1:0", 1});
  server->register_handler(1, [](const Bytes& b) -> Result<Bytes> {
    Bytes out = b;
    return out;
  });
  ASSERT_TRUE(server->start().ok());
  const Endpoint endpoint = server->endpoint();
  RpcClient client(endpoint, RpcClientOptions{300, 300});
  ASSERT_TRUE(client.call(1, Bytes{}).ok());
  server->stop();
  const auto resp = client.call(1, Bytes{});
  EXPECT_FALSE(resp.ok());
}

TEST(RpcServer, UnixDomainTransport) {
  const std::string sock = ::testing::TempDir() + "/hvac_rpc_test_" + std::to_string(::getpid()) + ".sock";
  RpcServer server(RpcServerOptions{"unix:" + sock, 2});
  server.register_handler(1, [](const Bytes& b) -> Result<Bytes> {
    Bytes out = b;
    return out;
  });
  ASSERT_TRUE(server.start().ok());
  RpcClient client(server.endpoint());
  Bytes msg{42};
  const auto resp = client.call(1, msg);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, msg);
  server.stop();
}

TEST(RpcClient, RequestOverMaxFrameRejectedClientSide) {
  RpcServer server(RpcServerOptions{"127.0.0.1:0", 1});
  ASSERT_TRUE(server.start().ok());
  RpcClient client(server.endpoint());
  Bytes huge(kMaxFrame + 1);
  const auto resp = client.call(1, huge);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kInvalidArgument);
}

// Pipelined handlers: one connection, many sequential calls with
// varied sizes, exercising the server's partial-read state machine.
class RpcPayloadSize : public ::testing::TestWithParam<size_t> {};

TEST_P(RpcPayloadSize, EchoAtSize) {
  RpcServer server(RpcServerOptions{"127.0.0.1:0", 2});
  server.register_handler(1, [](const Bytes& b) -> Result<Bytes> {
    Bytes out = b;
    return out;
  });
  ASSERT_TRUE(server.start().ok());
  RpcClient client(server.endpoint());
  Bytes msg(GetParam());
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i % 251);
  }
  const auto resp = client.call(1, msg);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RpcPayloadSize,
                         ::testing::Values(0, 1, 13, 4096, 65537,
                                           1u << 20));

// ---- gathered writes ------------------------------------------------------

// send_vectored must survive partial writes: a socketpair with a tiny
// send buffer and a slow reader forces sendmsg to accept a few KiB at
// a time, so the iovec-advancing resume logic is exercised for both
// the "partial inside an entry" and "entry fully consumed" cases.
TEST(SendVectored, PartialWritesDeliverAllBytesInOrder) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int snd = 4096;  // kernel clamps to its floor; still tiny
  ASSERT_EQ(::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd)),
            0);

  Bytes header(64);
  Bytes body(1u << 20);  // 1 MiB >> SO_SNDBUF: guarantees partials
  for (size_t i = 0; i < header.size(); ++i) {
    header[i] = static_cast<uint8_t>(i);
  }
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }

  Bytes received;
  received.reserve(header.size() + body.size());
  std::thread reader([&] {
    uint8_t buf[1536];  // smaller than the send buffer: drains slowly
    for (;;) {
      const ssize_t n = ::read(sv[1], buf, sizeof(buf));
      if (n <= 0) break;
      received.insert(received.end(), buf, buf + n);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  iovec iov[2];
  iov[0].iov_base = header.data();
  iov[0].iov_len = header.size();
  iov[1].iov_base = body.data();
  iov[1].iov_len = body.size();
  EXPECT_TRUE(send_vectored(sv[0], iov, 2).ok());
  ::close(sv[0]);  // EOF for the reader
  reader.join();
  ::close(sv[1]);

  ASSERT_EQ(received.size(), header.size() + body.size());
  EXPECT_TRUE(std::equal(header.begin(), header.end(), received.begin()));
  EXPECT_TRUE(std::equal(body.begin(), body.end(),
                         received.begin() + header.size()));
}

TEST(SendVectored, ClosedPeerReportsError) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  Bytes data(1u << 16, 0x5a);
  iovec iov[1];
  iov[0].iov_base = data.data();
  iov[0].iov_len = data.size();
  // Must fail with a Status (EPIPE), not kill the process with SIGPIPE.
  EXPECT_FALSE(send_vectored(sv[0], iov, 1).ok());
  ::close(sv[0]);
}

// ---- frame-size bound -----------------------------------------------------

TEST(RpcServer, FrameOverMaxFrameBytesDropsConnection) {
  RpcServerOptions opts{"127.0.0.1:0", 2};
  opts.max_frame_bytes = 1024;
  RpcServer server(opts);
  server.register_handler(1, [](const Bytes& b) -> Result<Bytes> {
    Bytes out = b;
    return out;
  });
  ASSERT_TRUE(server.start().ok());

  RpcClient client(server.endpoint(), RpcClientOptions{500, 500});
  // Within the bound: served normally.
  ASSERT_TRUE(client.call(1, Bytes(512)).ok());
  // Over the bound: the server drops the connection before sizing a
  // buffer to the hostile header; the client sees a dead transport.
  const auto resp = client.call(1, Bytes(2048));
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.error().code == ErrorCode::kUnavailable ||
              resp.error().code == ErrorCode::kTimeout);
  // The server itself stays healthy for new connections.
  RpcClient fresh(server.endpoint());
  EXPECT_TRUE(fresh.call(1, Bytes(256)).ok());
}

// ---- pooled payload path --------------------------------------------------

TEST(RpcPayload, PayloadHandlerRoundTripThroughPool) {
  RpcServer server(RpcServerOptions{"127.0.0.1:0", 2});
  // Handler preads nothing — it builds a pooled blob response exactly
  // like the server read path does.
  server.register_payload_handler(7, [](const Bytes& req) -> Result<Payload> {
    WireReader r(req);
    HVAC_ASSIGN_OR_RETURN(uint32_t n, r.get_u32());
    auto lease = BufferPool::global().acquire(kBlobPrefix + n);
    for (uint32_t i = 0; i < n; ++i) {
      lease.data()[kBlobPrefix + i] = static_cast<uint8_t>(i % 253);
    }
    return blob_payload(std::move(lease), n);
  });
  ASSERT_TRUE(server.start().ok());

  RpcClient client(server.endpoint());
  for (const uint32_t n : {0u, 1u, 4096u, 1u << 20}) {
    WireWriter w;
    w.put_u32(n);
    auto resp = client.call_payload(7, w.bytes());
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    WireReader r(resp->data(), resp->size());
    const auto view = r.get_blob_view();
    ASSERT_TRUE(view.ok());
    ASSERT_EQ(view->size, n);
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(view->data[i], static_cast<uint8_t>(i % 253)) << i;
    }
  }
}

// ---- scatter frame --------------------------------------------------------

TEST(Wire, ScatterDecodeRoundTrip) {
  WireWriter w;
  w.put_u32(3);
  w.put_u64(0);
  w.put_u32(3);
  w.put_u64(4096);
  w.put_u32(2);
  w.put_u64(1 << 20);  // fully past EOF: zero-length extent, no data
  w.put_u32(0);
  Bytes frame = w.bytes();
  const uint8_t body[5] = {10, 20, 30, 40, 50};
  frame.insert(frame.end(), body, body + 5);

  const auto view = decode_scatter(frame.data(), frame.size());
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  ASSERT_EQ(view->extents.size(), 3u);
  EXPECT_EQ(view->extents[0].offset, 0u);
  ASSERT_EQ(view->extents[0].length, 3u);
  EXPECT_EQ(view->extents[0].data[0], 10);
  EXPECT_EQ(view->extents[0].data[2], 30);
  EXPECT_EQ(view->extents[1].offset, 4096u);
  ASSERT_EQ(view->extents[1].length, 2u);
  EXPECT_EQ(view->extents[1].data[0], 40);
  EXPECT_EQ(view->extents[1].data[1], 50);
  EXPECT_EQ(view->extents[2].length, 0u);
}

TEST(Wire, ScatterDecodeRejectsMalformedFrames) {
  WireWriter w;
  w.put_u32(2);
  w.put_u64(0);
  w.put_u32(4);
  w.put_u64(100);
  w.put_u32(4);
  Bytes frame = w.bytes();
  // Table promises 8 data bytes; give it 7, then 9.
  frame.resize(frame.size() + 7, 0xab);
  EXPECT_FALSE(decode_scatter(frame.data(), frame.size()).ok());
  frame.resize(scatter_table_size(2) + 9, 0xab);
  EXPECT_FALSE(decode_scatter(frame.data(), frame.size()).ok());
  // Truncated mid-table.
  EXPECT_FALSE(decode_scatter(frame.data(), scatter_table_size(2) - 3).ok());
  // Extent count larger than the frame could possibly hold.
  WireWriter huge;
  huge.put_u32(1u << 30);
  EXPECT_FALSE(
      decode_scatter(huge.bytes().data(), huge.bytes().size()).ok());
}

// ---- zero-copy send ladder ------------------------------------------------

// A temp file filled with a deterministic pattern, plus the expected
// bytes for verification.
struct TempPatternFile {
  std::string path;
  int fd = -1;
  Bytes bytes;

  explicit TempPatternFile(size_t n) {
    path = ::testing::TempDir() + "zc_src_XXXXXX";
    fd = ::mkstemp(path.data());
    EXPECT_GE(fd, 0);
    bytes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      bytes[i] = static_cast<uint8_t>((i * 31 + 7) % 251);
    }
    EXPECT_EQ(::pwrite(fd, bytes.data(), n, 0), static_cast<ssize_t>(n));
  }
  ~TempPatternFile() {
    if (fd >= 0) ::close(fd);
    ::unlink(path.c_str());
  }
};

Bytes drain_socket(int fd, size_t want) {
  Bytes out(want);
  size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, out.data() + got, want - got, 0);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  out.resize(got);
  return out;
}

TEST(ZeroCopy, ResolveModeHonoursEnvOverride) {
  const char* prev = ::getenv("HVAC_ZEROCOPY");
  const std::string saved = prev ? prev : "";
  ::setenv("HVAC_ZEROCOPY", "off", 1);
  EXPECT_EQ(resolve_zerocopy_mode(), ZeroCopyMode::kOff);
  ::setenv("HVAC_ZEROCOPY", "sendfile", 1);
  EXPECT_EQ(resolve_zerocopy_mode(), ZeroCopyMode::kSendfile);
  ::setenv("HVAC_ZEROCOPY", "splice", 1);
  EXPECT_EQ(resolve_zerocopy_mode(), ZeroCopyMode::kSplice);
  ::unsetenv("HVAC_ZEROCOPY");
  // With no override the probe picks a rung; Linux supports
  // sendfile-to-socket, so it must not be the pooled fallback.
  EXPECT_NE(resolve_zerocopy_mode(), ZeroCopyMode::kOff);
  if (prev) ::setenv("HVAC_ZEROCOPY", saved.c_str(), 1);
}

TEST(ZeroCopy, SendfileExactDeliversExactBytes) {
  constexpr size_t kSize = 256 * 1024 + 17;
  TempPatternFile src(kSize);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Bytes received;
  std::thread reader([&] { received = drain_socket(sv[1], kSize); });
  EXPECT_TRUE(sendfile_exact(sv[0], src.fd, 0, kSize).ok());
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  EXPECT_EQ(received, src.bytes);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ZeroCopy, SendfileExactHonoursOffset) {
  constexpr size_t kSize = 64 * 1024;
  constexpr size_t kOffset = 4096 + 3;
  TempPatternFile src(kSize);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Bytes received;
  std::thread reader([&] { received = drain_socket(sv[1], kSize - kOffset); });
  EXPECT_TRUE(sendfile_exact(sv[0], src.fd, kOffset, kSize - kOffset).ok());
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  const Bytes expected(src.bytes.begin() + kOffset, src.bytes.end());
  EXPECT_EQ(received, expected);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ZeroCopy, SpliceExactDeliversExactBytes) {
  constexpr size_t kSize = 192 * 1024 + 13;
  TempPatternFile src(kSize);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int pd[2];
  ASSERT_EQ(::pipe(pd), 0);
  Bytes received;
  std::thread reader([&] { received = drain_socket(sv[1], kSize); });
  EXPECT_TRUE(splice_exact(sv[0], src.fd, 0, kSize, pd[0], pd[1]).ok());
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  EXPECT_EQ(received, src.bytes);
  ::close(sv[0]);
  ::close(sv[1]);
  ::close(pd[0]);
  ::close(pd[1]);
}

TEST(ZeroCopy, ShortSendfileResumesUntilComplete) {
  // Cap every kernel transfer at 4 KiB: a 64 KiB extent takes 16
  // sendfile calls, and every byte must still arrive in order.
  ASSERT_TRUE(fault::configure("zc_send:short=4096").ok());
  auto& zc = ZeroCopyCounters::global();
  const uint64_t resumes_before =
      zc.short_resumes.load(std::memory_order_relaxed);

  constexpr size_t kSize = 64 * 1024;
  TempPatternFile src(kSize);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Bytes received;
  std::thread reader([&] { received = drain_socket(sv[1], kSize); });
  EXPECT_TRUE(sendfile_exact(sv[0], src.fd, 0, kSize).ok());
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  fault::SiteStats st = fault::stats(fault::Site::kZcSend);
  fault::reset();

  EXPECT_EQ(received, src.bytes);
  EXPECT_GT(st.shorts, 0u);
  EXPECT_GT(zc.short_resumes.load(std::memory_order_relaxed),
            resumes_before);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ZeroCopy, ShortSpliceResumesUntilComplete) {
  ASSERT_TRUE(fault::configure("zc_splice:short=1024").ok());
  constexpr size_t kSize = 32 * 1024 + 5;
  TempPatternFile src(kSize);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int pd[2];
  ASSERT_EQ(::pipe(pd), 0);
  Bytes received;
  std::thread reader([&] { received = drain_socket(sv[1], kSize); });
  EXPECT_TRUE(splice_exact(sv[0], src.fd, 0, kSize, pd[0], pd[1]).ok());
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  fault::SiteStats st = fault::stats(fault::Site::kZcSplice);
  fault::reset();

  EXPECT_EQ(received, src.bytes);
  EXPECT_GT(st.shorts, 0u);
  ::close(sv[0]);
  ::close(sv[1]);
  ::close(pd[0]);
  ::close(pd[1]);
}

// ---- extent payloads through a live server --------------------------------

// Spins up a server whose handler answers with file-backed extents
// (opcode 8: single blob; opcode 9: scatter frame) and verifies the
// client sees byte-identical data. Exercised once per zero-copy rung —
// the wire contract must not depend on how the bytes reached the
// socket.
void run_extent_payload_roundtrip() {
  constexpr size_t kFile = 512 * 1024;
  auto src = std::make_shared<TempPatternFile>(kFile);
  RpcServer server(RpcServerOptions{"127.0.0.1:0", 2});
  server.register_payload_handler(
      8, [src](const Bytes& req) -> Result<Payload> {
        WireReader r(req);
        HVAC_ASSIGN_OR_RETURN(uint64_t off, r.get_u64());
        HVAC_ASSIGN_OR_RETURN(uint32_t len, r.get_u32());
        FileExtent ext;
        ext.owner = src;
        ext.fd = src->fd;
        ext.offset = off;
        ext.length = len;
        return blob_extent_payload(std::move(ext));
      });
  server.register_payload_handler(
      9, [src](const Bytes& req) -> Result<Payload> {
        WireReader r(req);
        HVAC_ASSIGN_OR_RETURN(uint32_t n, r.get_u32());
        WireWriter table;
        table.put_u32(n);
        std::vector<std::pair<uint64_t, uint32_t>> wants(n);
        for (uint32_t i = 0; i < n; ++i) {
          HVAC_ASSIGN_OR_RETURN(wants[i].first, r.get_u64());
          HVAC_ASSIGN_OR_RETURN(wants[i].second, r.get_u32());
          table.put_u64(wants[i].first);
          table.put_u32(wants[i].second);
        }
        Payload p(table.bytes());
        for (const auto& [off, len] : wants) {
          FileExtent ext;
          ext.owner = src;
          ext.fd = src->fd;
          ext.offset = off;
          ext.length = len;
          p.add_extent(std::move(ext));
        }
        return p;
      });
  ASSERT_TRUE(server.start().ok());

  RpcClient client(server.endpoint());
  // Single-blob extents at assorted offsets and sizes.
  const std::pair<uint64_t, uint32_t> cases[] = {
      {0, 1}, {0, 4096}, {12345, 70000}, {kFile - 9, 9}};
  for (const auto& [off, len] : cases) {
    WireWriter w;
    w.put_u64(off);
    w.put_u32(len);
    auto resp = client.call_payload(8, w.bytes());
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    WireReader r(resp->data(), resp->size());
    const auto view = r.get_blob_view();
    ASSERT_TRUE(view.ok());
    ASSERT_EQ(view->size, len);
    EXPECT_EQ(std::memcmp(view->data, src->bytes.data() + off, len), 0);
  }
  // A scatter response: three discontiguous extents in one frame.
  WireWriter w;
  w.put_u32(3);
  w.put_u64(0);
  w.put_u32(8192);
  w.put_u64(100000);
  w.put_u32(65536);
  w.put_u64(kFile - 512);
  w.put_u32(512);
  auto resp = client.call_payload(9, w.bytes());
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  const auto view = decode_scatter(resp->data(), resp->size());
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  ASSERT_EQ(view->extents.size(), 3u);
  for (const auto& ext : view->extents) {
    EXPECT_EQ(std::memcmp(ext.data, src->bytes.data() + ext.offset,
                          ext.length),
              0)
        << "extent at " << ext.offset;
  }
}

class ZeroCopyLeg : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const char* prev = ::getenv("HVAC_ZEROCOPY");
    saved_ = prev ? prev : "";
    had_ = prev != nullptr;
    ::setenv("HVAC_ZEROCOPY", GetParam(), 1);
  }
  void TearDown() override {
    if (had_) {
      ::setenv("HVAC_ZEROCOPY", saved_.c_str(), 1);
    } else {
      ::unsetenv("HVAC_ZEROCOPY");
    }
  }
  std::string saved_;
  bool had_ = false;
};

TEST_P(ZeroCopyLeg, ExtentPayloadRoundTrip) { run_extent_payload_roundtrip(); }

INSTANTIATE_TEST_SUITE_P(AllRungs, ZeroCopyLeg,
                         ::testing::Values("sendfile", "splice", "off"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace hvac::rpc
