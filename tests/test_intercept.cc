// End-to-end LD_PRELOAD tests: an unmodified helper binary reads
// dataset files through the shim against a live in-process allocation
// (paper §III-F — portability without touching application code).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "server/node_runtime.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

#ifndef HVAC_INTERCEPT_SO
#error "HVAC_INTERCEPT_SO must be defined by the build"
#endif
#ifndef HVAC_TARGET_BIN
#error "HVAC_TARGET_BIN must be defined by the build"
#endif

namespace hvac {
namespace {

namespace fs = std::filesystem;

// Suffix every scratch path with the pid: ctest runs each test case as
// its own process, in parallel, and a shared literal path lets one test
// wipe another's live tree mid-run.
std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_shim_" + name + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Runs the helper under the shim. Returns its stdout.
std::string run_target(const std::vector<std::string>& files,
                       const std::string& dataset_dir,
                       const std::string& servers, bool preload,
                       bool stdio_mode = false) {
  const std::string out_file = ::testing::TempDir() + "hvac_shim_out_" +
                               std::to_string(::getpid()) + ".txt";
  std::ostringstream cmd;
  cmd << "env ";
  if (preload) {
    cmd << "LD_PRELOAD=" << HVAC_INTERCEPT_SO << " ";
    // In -DHVAC_SANITIZE=address builds the shim precedes the ASan
    // runtime in the initial library list, which ASan rejects by
    // default. The target binary itself links the runtime, so the
    // order check is the only problem; ignored by non-ASan builds.
    cmd << "ASAN_OPTIONS=verify_asan_link_order=0 ";
  }
  if (!dataset_dir.empty()) cmd << "HVAC_DATASET_DIR=" << dataset_dir << " ";
  if (!servers.empty()) cmd << "HVAC_SERVERS=" << servers << " ";
  cmd << HVAC_TARGET_BIN;
  if (stdio_mode) cmd << " --stdio";
  for (const auto& f : files) cmd << " " << f;
  cmd << " > " << out_file << " 2>/dev/null";
  const int rc = std::system(cmd.str().c_str());
  EXPECT_EQ(rc, 0) << cmd.str();
  std::ifstream in(out_file);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Expected "<path> <size> <fnv>" line for a generated file.
std::string expected_line(const std::string& abs_path,
                          const std::string& rel, uint64_t size) {
  const auto data = workload::expected_contents(rel, size);
  const uint64_t h = fnv1a64(std::string_view(
      reinterpret_cast<const char*>(data.data()), data.size()));
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 " %016" PRIx64, size, h);
  return abs_path + buf;
}

class InterceptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    const auto spec = workload::synthetic_small(8, 4096, 0.3);
    auto tree = workload::generate_tree(pfs_root_, spec);
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();

    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root_;
    o.cache_root = temp_dir("cache");
    o.instances = 2;
    node_ = std::make_unique<server::NodeRuntime>(o);
    ASSERT_TRUE(node_->start().ok());
  }

  std::vector<std::string> abs_paths() const {
    std::vector<std::string> out;
    for (const auto& rel : tree_.relative_paths) {
      out.push_back(pfs_root_ + "/" + rel);
    }
    return out;
  }

  std::string expected_output() const {
    std::string expected;
    for (size_t i = 0; i < tree_.relative_paths.size(); ++i) {
      expected += expected_line(pfs_root_ + "/" + tree_.relative_paths[i],
                                tree_.relative_paths[i], tree_.sizes[i]);
      expected += "\n";
    }
    return expected;
  }

  std::string pfs_root_;
  workload::GeneratedTree tree_;
  std::unique_ptr<server::NodeRuntime> node_;
};

TEST_F(InterceptTest, TargetWithoutShimBaseline) {
  const std::string out = run_target(abs_paths(), "", "", /*preload=*/false);
  EXPECT_EQ(out, expected_output());
}

TEST_F(InterceptTest, ShimServesIdenticalBytes) {
  const std::string out = run_target(abs_paths(), pfs_root_,
                                     node_->endpoints_csv(),
                                     /*preload=*/true);
  EXPECT_EQ(out, expected_output());
  // The reads really went through the servers.
  const auto m = node_->aggregated_metrics();
  EXPECT_EQ(m.misses, tree_.relative_paths.size());
}

TEST_F(InterceptTest, SecondRunHitsCache) {
  (void)run_target(abs_paths(), pfs_root_, node_->endpoints_csv(), true);
  const std::string out =
      run_target(abs_paths(), pfs_root_, node_->endpoints_csv(), true);
  EXPECT_EQ(out, expected_output());
  const auto m = node_->aggregated_metrics();
  EXPECT_EQ(m.misses, tree_.relative_paths.size());
  EXPECT_EQ(m.hits, tree_.relative_paths.size());
}

TEST_F(InterceptTest, ShimWithoutEnvIsPassthrough) {
  // Preloaded but unconfigured: must behave exactly like no shim.
  const std::string out = run_target(abs_paths(), "", "", /*preload=*/true);
  EXPECT_EQ(out, expected_output());
  EXPECT_EQ(node_->aggregated_metrics().misses, 0u);
}

TEST_F(InterceptTest, PathsOutsideDatasetDirPassThrough) {
  // A file outside HVAC_DATASET_DIR is read directly, not forwarded.
  const std::string outside_dir = temp_dir("outside");
  const std::string outside = outside_dir + "/plain.bin";
  std::vector<uint8_t> data(512, 0x5a);
  ASSERT_TRUE(storage::write_file(outside, data.data(), data.size()).ok());

  const std::string out = run_target({outside}, pfs_root_,
                                     node_->endpoints_csv(), true);
  const uint64_t h = fnv1a64(std::string_view(
      reinterpret_cast<const char*>(data.data()), data.size()));
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %u %016" PRIx64 "\n", 512u, h);
  EXPECT_EQ(out, outside + buf);
  EXPECT_EQ(node_->aggregated_metrics().misses, 0u);
}

TEST_F(InterceptTest, StdioPathServedThroughShim) {
  // fopen/fseek/fread/fclose (fopencookie interposition) must deliver
  // identical bytes and really hit the cache.
  const std::string out =
      run_target(abs_paths(), pfs_root_, node_->endpoints_csv(),
                 /*preload=*/true, /*stdio_mode=*/true);
  EXPECT_EQ(out, expected_output());
  EXPECT_EQ(node_->aggregated_metrics().misses,
            tree_.relative_paths.size());
}

TEST_F(InterceptTest, StdioWithoutShimBaseline) {
  const std::string out = run_target(abs_paths(), "", "",
                                     /*preload=*/false,
                                     /*stdio_mode=*/true);
  EXPECT_EQ(out, expected_output());
}

TEST_F(InterceptTest, DeadServersFailOpenToPfs) {
  const std::string servers = node_->endpoints_csv();
  node_->stop();  // cache gone; application must still work
  const std::string out = run_target(abs_paths(), pfs_root_, servers, true);
  EXPECT_EQ(out, expected_output());
}

}  // namespace
}  // namespace hvac
