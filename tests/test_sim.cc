// Tests for the discrete-event simulator: engine determinism, the
// resource models, and — most importantly — the qualitative paper
// shapes (GPFS metadata saturation, NVMe linear scaling, HVAC's
// first-epoch penalty and instance ladder) that the figure benches
// rely on.
#include <gtest/gtest.h>

#include "sim/backends.h"
#include "sim/cluster.h"
#include "sim/dl_job.h"
#include "sim/engine.h"
#include "sim/mdtest.h"
#include "sim/resources.h"
#include "workload/dataset_spec.h"

namespace hvac::sim {
namespace {

// ---- engine ------------------------------------------------------------------

TEST(Engine, FiresInTimeOrder) {
  SimEngine engine;
  std::vector<int> fired;
  engine.schedule_at(3.0, [&] { fired.push_back(3); });
  engine.schedule_at(1.0, [&] { fired.push_back(1); });
  engine.schedule_at(2.0, [&] { fired.push_back(2); });
  EXPECT_DOUBLE_EQ(engine.run(), 3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, TiesFireInScheduleOrder) {
  SimEngine engine;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(Engine, NestedScheduling) {
  SimEngine engine;
  double inner_time = -1;
  engine.schedule_at(1.0, [&] {
    engine.schedule_in(0.5, [&] { inner_time = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(inner_time, 1.5);
}

TEST(Engine, PastSchedulingClampsToNow) {
  SimEngine engine;
  double t = -1;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(1.0, [&] { t = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run();
  EXPECT_EQ(fired, 2);
}

// ---- resources ----------------------------------------------------------------

TEST(ServiceStation, QueueingDelayAccumulates) {
  ServiceStation station(100.0);  // 10 ms per op
  EXPECT_DOUBLE_EQ(station.enqueue(0.0, 1), 0.01);
  EXPECT_DOUBLE_EQ(station.enqueue(0.0, 1), 0.02);  // queued behind
  EXPECT_DOUBLE_EQ(station.enqueue(1.0, 1), 1.01);  // idle gap skipped
  EXPECT_EQ(station.total_ops(), 3u);
}

TEST(ServiceStation, BatchOfOps) {
  ServiceStation station(1000.0);
  EXPECT_NEAR(station.enqueue(0.0, 500), 0.5, 1e-12);
  EXPECT_NEAR(station.backlog(0.0), 0.5, 1e-12);
  EXPECT_NEAR(station.backlog(0.6), 0.0, 1e-12);
}

TEST(PsResource, FairShareRate) {
  PsResource r(100.0);
  EXPECT_DOUBLE_EQ(r.rate(), 100.0);
  EXPECT_DOUBLE_EQ(r.admit(), 100.0);
  EXPECT_DOUBLE_EQ(r.admit(), 50.0);
  EXPECT_DOUBLE_EQ(r.admit(), 100.0 / 3);
  r.release();
  EXPECT_DOUBLE_EQ(r.rate(), 50.0);
  EXPECT_EQ(r.peak_active(), 3u);
}

TEST(Cluster, TransferDurationMatchesBottleneck) {
  SummitConfig cfg;
  Cluster cluster(cfg, 2);
  double done_at = -1;
  // 55 GB through a single node's NVMe (5.5 GB/s) = 10 s.
  cluster.transfer(0.0, {&cluster.node(0).nvme_read},
                   uint64_t(55e9), [&] { done_at = cluster.engine().now(); });
  cluster.engine().run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(Cluster, ConcurrentTransfersShareBandwidth) {
  SummitConfig cfg;
  Cluster cluster(cfg, 1);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    cluster.transfer(0.0, {&cluster.node(0).nvme_read},
                     uint64_t(5.5e9),
                     [&] { done.push_back(cluster.engine().now()); });
  }
  cluster.engine().run();
  ASSERT_EQ(done.size(), 2u);
  // Two admitted concurrently: each sees ~half rate -> ~2 s.
  EXPECT_GT(done[1], 1.5);
}

// ---- mdtest shapes (Figs 3 & 4) --------------------------------------------------

TEST(MdTest, XfsScalesLinearlyGpfsSaturates32k) {
  SummitConfig cfg;
  MdTestConfig test;
  test.transactions_per_rank = 40;
  test.file_bytes = 32 * 1024;

  auto tx_rate = [&](const std::string& backend, uint32_t nodes) {
    MdTestConfig t = test;
    t.nodes = nodes;
    return run_mdtest(cfg, t, backend).transactions_per_second;
  };

  // XFS: ~linear in node count.
  const double xfs8 = tx_rate("XFS", 8);
  const double xfs64 = tx_rate("XFS", 64);
  EXPECT_GT(xfs64 / xfs8, 6.0);

  // GPFS: saturates at the metadata service rate.
  const double gpfs64 = tx_rate("GPFS", 64);
  const double gpfs256 = tx_rate("GPFS", 256);
  EXPECT_LT(gpfs256 / gpfs64, 1.6);
  EXPECT_LT(gpfs256, cfg.gpfs_metadata_ops_per_s * 1.05);

  // And XFS beats GPFS well before full scale.
  EXPECT_GT(xfs64, tx_rate("GPFS", 64));
}

TEST(MdTest, BandwidthBoundCrossover8m) {
  // 8 MB files: GPFS is bandwidth-capped at 2.5 TB/s / 8 MB ~ 312k
  // tx/s... but reachable only at scale; per node XFS does 5.5/8e-3 ~
  // 687 tx/s. Crossover lands near 450 nodes (paper Fig 4).
  SummitConfig cfg;
  MdTestConfig test;
  test.transactions_per_rank = 15;
  test.file_bytes = 8 * 1024 * 1024;

  auto tx_rate = [&](const std::string& backend, uint32_t nodes) {
    MdTestConfig t = test;
    t.nodes = nodes;
    return run_mdtest(cfg, t, backend).transactions_per_second;
  };

  // Small scale: GPFS's huge aggregate pipe wins.
  EXPECT_GT(tx_rate("GPFS", 16), tx_rate("XFS", 16));
  // Large scale: aggregated NVMe wins.
  EXPECT_GT(tx_rate("XFS", 1024), tx_rate("GPFS", 1024));
}

TEST(MdTest, DeterministicAcrossRuns) {
  SummitConfig cfg;
  MdTestConfig test;
  test.nodes = 4;
  test.transactions_per_rank = 30;
  const auto a = run_mdtest(cfg, test, "GPFS");
  const auto b = run_mdtest(cfg, test, "GPFS");
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.events, b.events);
}

// ---- DL job shapes (Figs 8-13) ---------------------------------------------------

DlJobConfig small_job(uint32_t nodes, uint64_t scale = 2048,
                      uint32_t epochs = 3) {
  DlJobConfig job;
  job.app = workload::resnet50();
  job.nodes = nodes;
  job.dataset_scale = scale;
  job.epochs_override = epochs;
  return job;
}

TEST(DlJob, CompletesAndCountsEpochs) {
  const auto r = run_dl_job(summit_defaults(), small_job(4), "GPFS");
  EXPECT_EQ(r.epoch_seconds.size(), 3u);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.io.bytes_from_gpfs, 0u);
}

TEST(DlJob, HvacFirstEpochSlowLaterEpochsFast) {
  const auto r = run_dl_job(summit_defaults(), small_job(4), "HVAC(1x1)");
  ASSERT_EQ(r.epoch_seconds.size(), 3u);
  // Epoch 1 pays the GPFS pull; later epochs come from NVMe.
  EXPECT_GT(r.first_epoch_seconds(),
            r.best_random_epoch_seconds() * 1.02);
  // All files were misses exactly once.
  EXPECT_EQ(r.io.cache_misses,
            workload::resnet50().dataset.scaled(2048).num_files);
  EXPECT_GT(r.io.cache_hits, r.io.cache_misses);
}

TEST(DlJob, OrderingAtScaleGpfsSlowestXfsFastest) {
  // At 256 nodes the paper's ordering must hold:
  //   GPFS > HVAC(1x1) > HVAC(4x1) >= XFS.
  SummitConfig cfg;
  const auto job = small_job(256, 4096, 3);
  const double gpfs = run_dl_job(cfg, job, "GPFS").total_seconds;
  const double h1 = run_dl_job(cfg, job, "HVAC(1x1)").total_seconds;
  const double h4 = run_dl_job(cfg, job, "HVAC(4x1)").total_seconds;
  const double xfs = run_dl_job(cfg, job, "XFS").total_seconds;
  EXPECT_GT(gpfs, h1);
  EXPECT_GT(h1, h4);
  EXPECT_GE(h4, xfs * 0.98);
}

TEST(DlJob, HvacInstanceLadder) {
  // Overhead vs XFS must fall as instances rise (Fig 9b ladder),
  // measured on cached (steady-state) epochs.
  SummitConfig cfg;
  const auto job = small_job(64, 4096, 4);
  const double xfs =
      run_dl_job(cfg, job, "XFS").avg_epoch_seconds();
  const double h1 =
      run_dl_job(cfg, job, "HVAC(1x1)").best_random_epoch_seconds();
  const double h2 =
      run_dl_job(cfg, job, "HVAC(2x1)").best_random_epoch_seconds();
  const double h4 =
      run_dl_job(cfg, job, "HVAC(4x1)").best_random_epoch_seconds();
  EXPECT_GT(h1, h2);
  EXPECT_GT(h2, h4);
  EXPECT_GT(h4, xfs * 0.9);
}

TEST(DlJob, GpfsDegradesWithScaleHvacDoesNot) {
  // Per-epoch time under strong scaling: GPFS stops improving (the
  // metadata wall); HVAC keeps improving. Scale 32 keeps >= 10
  // batches per rank at 512 nodes so quantization doesn't mask the
  // trend.
  SummitConfig cfg;
  auto epoch_at = [&](const std::string& backend, uint32_t nodes) {
    const auto job = small_job(nodes, 32, 2);
    return run_dl_job(cfg, job, backend).epoch_seconds.back();
  };
  const double gpfs_small = epoch_at("GPFS", 32);
  const double gpfs_large = epoch_at("GPFS", 512);
  const double hvac_small = epoch_at("HVAC(2x1)", 32);
  const double hvac_large = epoch_at("HVAC(2x1)", 512);
  const double gpfs_speedup = gpfs_small / gpfs_large;
  const double hvac_speedup = hvac_small / hvac_large;
  EXPECT_GT(hvac_speedup, gpfs_speedup * 1.5);
  EXPECT_GT(hvac_speedup, 10.0);  // near-linear (16x ideal)
  EXPECT_LT(gpfs_speedup, 8.0);   // the wall
}

TEST(DlJob, ShapeInvariantUnderDatasetScaling) {
  // The scale knob must not change who wins or the approximate ratio.
  SummitConfig cfg;
  auto ratio_at = [&](uint64_t scale) {
    const auto job = small_job(32, scale, 3);
    const double gpfs = run_dl_job(cfg, job, "GPFS").total_seconds;
    const double hvac = run_dl_job(cfg, job, "HVAC(2x1)").total_seconds;
    return gpfs / hvac;
  };
  const double r1 = ratio_at(64);
  const double r2 = ratio_at(256);
  EXPECT_GT(r1, 1.0);
  EXPECT_GT(r2, 1.0);
  EXPECT_NEAR(r1, r2, 0.35 * r1);
}

TEST(DlJob, DeterministicRuns) {
  const auto a = run_dl_job(summit_defaults(), small_job(8), "HVAC(2x1)");
  const auto b = run_dl_job(summit_defaults(), small_job(8), "HVAC(2x1)");
  EXPECT_EQ(a.epoch_seconds, b.epoch_seconds);
  EXPECT_EQ(a.events, b.events);
}

TEST(DlJob, ForcedLocalityHasModestImpact) {
  // Fig 13: 100% local vs 100% remote placement differs little thanks
  // to the fast interconnect.
  SummitConfig cfg;
  DlJobConfig job = small_job(16, 4096, 3);
  HvacSimOptions local;
  local.forced_local_fraction = 1.0;
  HvacSimOptions remote;
  remote.forced_local_fraction = 0.0;
  const double t_local =
      run_dl_job(cfg, job, "HVAC", &local).best_random_epoch_seconds();
  const double t_remote =
      run_dl_job(cfg, job, "HVAC", &remote).best_random_epoch_seconds();
  EXPECT_LT(t_remote / t_local, 1.35);
}

TEST(DlJob, PrewarmedSkipsFirstEpochPenalty) {
  SummitConfig cfg;
  DlJobConfig job = small_job(8, 4096, 3);
  HvacSimOptions warm;
  warm.prewarmed = true;
  const auto r = run_dl_job(cfg, job, "HVAC", &warm);
  EXPECT_LT(r.first_epoch_seconds(),
            r.best_random_epoch_seconds() * 1.2);
  EXPECT_EQ(r.io.cache_misses, 0u);
}

TEST(DlJob, HvacLoadBalancedAcrossServers) {
  SummitConfig cfg;
  Cluster cluster(cfg, 16);
  const auto dataset = workload::resnet50().dataset.scaled(512);
  HvacSimOptions options;
  options.instances_per_node = 2;
  HvacSim hvac(&cluster, dataset, options);

  BatchIo io;
  io.node = 0;
  for (uint64_t f = 0; f < dataset.num_files; ++f) {
    io.files.push_back(f);
  }
  bool done = false;
  hvac.read_batch(io, [&] { done = true; });
  cluster.engine().run();
  EXPECT_TRUE(done);

  const auto counts = hvac.per_server_file_counts();
  ASSERT_EQ(counts.size(), 32u);
  uint64_t total = 0, mn = UINT64_MAX, mx = 0;
  for (uint64_t c : counts) {
    total += c;
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_EQ(total, dataset.num_files);
  EXPECT_GT(mn, 0u);
  EXPECT_LT(double(mx) / double(mn), 1.6);
}

TEST(DlJob, UtilizationReportConsistent) {
  const auto gpfs = run_dl_job(summit_defaults(), small_job(32), "GPFS");
  const auto hvac =
      run_dl_job(summit_defaults(), small_job(32), "HVAC(2x1)");
  // GPFS: all data over the GPFS pipe, none from NVMe.
  EXPECT_EQ(gpfs.utilization.gpfs_data_bytes, gpfs.io.bytes_from_gpfs);
  EXPECT_EQ(gpfs.utilization.nvme_read_bytes, 0u);
  EXPECT_GT(gpfs.utilization.gpfs_meta_utilization, 0.0);
  EXPECT_LE(gpfs.utilization.gpfs_meta_utilization, 1.0 + 1e-9);
  // HVAC pulls each file once over GPFS and the metadata pool is far
  // less loaded than the GPFS baseline's.
  EXPECT_LT(hvac.utilization.gpfs_meta_utilization,
            gpfs.utilization.gpfs_meta_utilization);
  EXPECT_GT(hvac.utilization.nvme_read_bytes, 0u);
}

TEST(DlJob, ServerFailureWithReplicationSurvives) {
  // Kill a quarter of the servers mid-training. With r=2 rendezvous
  // replication the lost files fail over to their second home; no
  // request needs the PFS after epoch 1 + re-fetch.
  SummitConfig cfg;
  DlJobConfig job = small_job(16, 2048, 4);
  HvacSimOptions withrep;
  withrep.instances_per_node = 1;
  withrep.placement = core::PlacementPolicy::kRendezvous;
  withrep.replicas = 2;
  withrep.failed_servers = 4;
  withrep.fail_at_seconds = 1.0;  // after epoch 1 (sim time)
  const auto r = run_dl_job(cfg, job, "HVAC", &withrep);
  EXPECT_EQ(r.epoch_seconds.size(), 4u);
  EXPECT_GT(r.io.failover_reads, 0u);

  // Compare with r=1 under the same failure: replication converts
  // almost all of the permanent GPFS fallbacks into replica reads
  // (a residual remains where both homes landed in the dead set).
  HvacSimOptions norep = withrep;
  norep.replicas = 1;
  const auto r1 = run_dl_job(cfg, job, "HVAC", &norep);
  EXPECT_GT(r1.io.dead_fallback_reads, 0u);
  EXPECT_LT(r.io.dead_fallback_reads, r1.io.dead_fallback_reads / 2);
}

TEST(DlJob, ServerFailureWithoutReplicationFallsBackToGpfs) {
  SummitConfig cfg;
  DlJobConfig job = small_job(16, 2048, 4);
  HvacSimOptions norep;
  norep.instances_per_node = 1;
  norep.replicas = 1;
  norep.failed_servers = 4;
  norep.fail_at_seconds = 1.0;
  const auto r = run_dl_job(cfg, job, "HVAC", &norep);
  EXPECT_EQ(r.epoch_seconds.size(), 4u);
  // Files homed on dead servers must hit the PFS every epoch after
  // the failure (the §III-H failure mode motivating replication).
  EXPECT_GT(r.io.dead_fallback_reads, 0u);
  EXPECT_EQ(r.io.failover_reads, 0u);
}

TEST(DlJob, ReplicationCostsInterconnectBytes) {
  SummitConfig cfg;
  DlJobConfig job = small_job(8, 2048, 2);
  HvacSimOptions r1, r2;
  r1.placement = r2.placement = core::PlacementPolicy::kRendezvous;
  r2.replicas = 2;
  const auto a = run_dl_job(cfg, job, "HVAC", &r1);
  const auto b = run_dl_job(cfg, job, "HVAC", &r2);
  // The replica copies ride the interconnect.
  EXPECT_GT(b.io.bytes_over_network, a.io.bytes_over_network);
  // But GPFS traffic is unchanged: still one PFS fetch per file.
  EXPECT_EQ(a.io.bytes_from_gpfs, b.io.bytes_from_gpfs);
}

TEST(Backends, FactoryLabels) {
  SummitConfig cfg;
  Cluster cluster(cfg, 2);
  const auto dataset = workload::synthetic_small(128, 1024);
  EXPECT_EQ(make_backend("GPFS", &cluster, dataset)->name(), "GPFS");
  EXPECT_EQ(make_backend("XFS", &cluster, dataset)->name(), "XFS-on-NVMe");
  EXPECT_EQ(make_backend("HVAC(2x1)", &cluster, dataset)->name(),
            "HVAC(2x1)");
  EXPECT_EQ(make_backend("garbage", &cluster, dataset), nullptr);
}

TEST(SummitConfig, Table1Renders) {
  const std::string t = table1_string(summit_defaults());
  EXPECT_NE(t.find("POWER9"), std::string::npos);
  EXPECT_NE(t.find("V100"), std::string::npos);
  EXPECT_NE(t.find("NVMe"), std::string::npos);
  EXPECT_NE(t.find("InfiniBand"), std::string::npos);
}

}  // namespace
}  // namespace hvac::sim
