// Tests for the storage substrate: RAII files, throttling, the
// GPFS-like PFS backend and the node-local store.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "common/env.h"
#include "storage/local_store.h"
#include "storage/open_handle_cache.h"
#include "storage/pfs_backend.h"
#include "storage/posix_file.h"
#include "storage/throttle.h"

namespace hvac::storage {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_storage_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- posix file ---------------------------------------------------------------

TEST(PosixFile, WriteReadRoundTrip) {
  const std::string dir = temp_dir("rt");
  const std::string path = dir + "/f.bin";
  std::vector<uint8_t> data{10, 20, 30, 40, 50};
  ASSERT_TRUE(write_file(path, data.data(), data.size()).ok());
  const auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(PosixFile, OpenMissingIsNotFound) {
  const auto f = PosixFile::open_read("/no/such/file/xyz");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, ErrorCode::kNotFound);
}

TEST(PosixFile, PreadAtOffsets) {
  const std::string dir = temp_dir("pread");
  const std::string path = dir + "/f.bin";
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i % 256);
  ASSERT_TRUE(write_file(path, data.data(), data.size()).ok());

  auto f = PosixFile::open_read(path);
  ASSERT_TRUE(f.ok());
  uint8_t buf[16];
  const auto n = f->pread(buf, sizeof(buf), 500);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 16u);
  EXPECT_EQ(buf[0], 500 % 256);
  // Reading past EOF returns 0.
  EXPECT_EQ(f->pread(buf, sizeof(buf), 5000).value(), 0u);
  EXPECT_EQ(f->size().value(), 1000u);
}

TEST(PosixFile, CopyContents) {
  const std::string dir = temp_dir("copy");
  std::vector<uint8_t> data(300000, 7);
  ASSERT_TRUE(write_file(dir + "/src.bin", data.data(), data.size()).ok());
  const auto n = copy_file_contents(dir + "/src.bin", dir + "/sub/dst.bin");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(read_file(dir + "/sub/dst.bin").value(), data);
}

TEST(PosixFile, MakeDirectoriesIdempotent) {
  const std::string dir = temp_dir("mkdir");
  EXPECT_TRUE(make_directories(dir + "/a/b/c").ok());
  EXPECT_TRUE(make_directories(dir + "/a/b/c").ok());
  EXPECT_TRUE(fs::is_directory(dir + "/a/b/c"));
}

TEST(PosixFile, RemoveMissingFileIsOk) {
  EXPECT_TRUE(remove_file("/tmp/definitely_not_here_12345").ok());
}

TEST(PosixFile, FileExistsAndSize) {
  const std::string dir = temp_dir("exists");
  EXPECT_FALSE(file_exists(dir + "/f"));
  uint8_t b = 1;
  ASSERT_TRUE(write_file(dir + "/f", &b, 1).ok());
  EXPECT_TRUE(file_exists(dir + "/f"));
  EXPECT_EQ(file_size(dir + "/f").value(), 1u);
  EXPECT_FALSE(file_exists(dir));  // directories are not regular files
}

// ---- throttle ------------------------------------------------------------------

TEST(TokenBucket, UnthrottledNeverWaits) {
  TokenBucket bucket(0.0, 1);
  EXPECT_DOUBLE_EQ(bucket.would_wait_seconds(1u << 30), 0.0);
  bucket.acquire(1u << 30);  // returns immediately
}

TEST(TokenBucket, BurstThenDebt) {
  TokenBucket bucket(1e6, 1e6);  // 1 MB/s, 1 MB burst
  EXPECT_DOUBLE_EQ(bucket.would_wait_seconds(500000), 0.0);
  bucket.acquire(1000000);  // spends the burst
  const double wait = bucket.would_wait_seconds(1000000);
  EXPECT_GT(wait, 0.5);
  EXPECT_LE(wait, 1.1);
}

TEST(TokenBucket, MetersThroughput) {
  TokenBucket bucket(10e6, 1e4);  // 10 MB/s, small burst
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) bucket.acquire(100000);  // 1 MB total
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_GT(secs, 0.06);  // ~0.1 s ideal; allow scheduling slop
  EXPECT_LT(secs, 0.5);
}

TEST(LatencyInjector, ZeroIsFree) {
  LatencyInjector inj(0, 0, 1);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) inj.inject();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(ms, 50.0);
}

TEST(LatencyInjector, InjectsApproximateBase) {
  LatencyInjector inj(2000, 500, 7);  // 2 ms +/- 0.5 ms
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) inj.inject();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GT(ms, 10.0);
}

// ---- pfs backend ----------------------------------------------------------------

TEST(PfsBackend, ReadAllMatchesDisk) {
  const std::string root = temp_dir("pfs1");
  std::vector<uint8_t> data(5000, 0xab);
  ASSERT_TRUE(write_file(root + "/d/f.bin", data.data(), data.size()).ok());
  PfsBackend pfs(root);  // no throttling
  const auto back = pfs.read_all("d/f.bin");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_EQ(pfs.bytes_read(), 5000u);
  EXPECT_GE(pfs.metadata_ops(), 1u);
}

TEST(PfsBackend, MissingFileError) {
  PfsBackend pfs(temp_dir("pfs2"));
  EXPECT_FALSE(pfs.read_all("nope.bin").ok());
  EXPECT_FALSE(pfs.size_of("nope.bin").ok());
  EXPECT_FALSE(pfs.exists("nope.bin"));
}

TEST(PfsBackend, CopyOutChargesAndCopies) {
  const std::string root = temp_dir("pfs3");
  const std::string out = temp_dir("pfs3out");
  std::vector<uint8_t> data(12345, 3);
  ASSERT_TRUE(write_file(root + "/f.bin", data.data(), data.size()).ok());
  PfsBackend pfs(root);
  const auto n = pfs.copy_out("f.bin", out + "/f.copy");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(pfs.bytes_read(), data.size());
  EXPECT_EQ(read_file(out + "/f.copy").value(), data);
}

TEST(PfsBackend, MetadataLatencySlowsOpens) {
  const std::string root = temp_dir("pfs4");
  uint8_t b = 1;
  ASSERT_TRUE(write_file(root + "/f.bin", &b, 1).ok());
  PfsOptions slow;
  slow.metadata_latency_us = 3000;
  PfsBackend pfs(root, slow);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pfs.open("f.bin").ok());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GT(ms, 12.0);
  EXPECT_EQ(pfs.metadata_ops(), 5u);
}

TEST(PfsBackend, AbsolutePathPassthrough) {
  const std::string root = temp_dir("pfs5");
  PfsBackend pfs(root);
  EXPECT_EQ(pfs.absolute("a/b.bin"), root + "/a/b.bin");
  EXPECT_EQ(pfs.absolute("/already/abs"), "/already/abs");
}

// ---- local store -----------------------------------------------------------------

TEST(LocalStore, InsertOpenEvict) {
  const std::string root = temp_dir("store1");
  LocalStore store(root);
  const std::string logical = "class_1/a.bin";
  std::vector<uint8_t> data(100, 9);
  ASSERT_TRUE(write_file(store.physical_path(logical), data.data(),
                         data.size())
                  .ok());
  ASSERT_TRUE(store.insert(logical, data.size()).ok());
  EXPECT_TRUE(store.contains(logical));
  EXPECT_EQ(store.bytes_used(), 100u);
  EXPECT_EQ(store.entry_count(), 1u);

  auto f = store.open(logical);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size().value(), 100u);

  EXPECT_EQ(store.evict(logical).value(), 100u);
  EXPECT_FALSE(store.contains(logical));
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_FALSE(file_exists(store.physical_path(logical)));
}

TEST(LocalStore, OpenUncachedIsNotFound) {
  LocalStore store(temp_dir("store2"));
  const auto f = store.open("missing");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(store.evict("missing").ok());
}

TEST(LocalStore, CapacityEnforced) {
  LocalStore store(temp_dir("store3"), 250);
  EXPECT_TRUE(store.insert("a", 100).ok());
  EXPECT_TRUE(store.insert("b", 100).ok());
  const Status s = store.insert("c", 100);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kCapacity);
  EXPECT_EQ(store.bytes_used(), 200u);
}

TEST(LocalStore, InsertIdempotent) {
  LocalStore store(temp_dir("store4"));
  EXPECT_TRUE(store.insert("a", 100).ok());
  EXPECT_TRUE(store.insert("a", 100).ok());
  EXPECT_EQ(store.bytes_used(), 100u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(LocalStore, PurgeRemovesEverything) {
  const std::string root = temp_dir("store5");
  LocalStore store(root);
  for (int i = 0; i < 10; ++i) {
    const std::string logical = "f" + std::to_string(i);
    uint8_t b = 1;
    ASSERT_TRUE(
        write_file(store.physical_path(logical), &b, 1).ok());
    ASSERT_TRUE(store.insert(logical, 1).ok());
  }
  EXPECT_EQ(store.entry_count(), 10u);
  store.purge();
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
  size_t remaining = 0;
  for (const auto& e : fs::directory_iterator(root)) {
    (void)e;
    ++remaining;
  }
  EXPECT_EQ(remaining, 0u);
}

TEST(LocalStore, PhysicalPathsFlatAndDistinct) {
  LocalStore store(temp_dir("store6"));
  const std::string p1 = store.physical_path("a/b/c.bin");
  const std::string p2 = store.physical_path("a/b/d.bin");
  EXPECT_NE(p1, p2);
  // Flat: no logical directory components leak into the cache dir.
  EXPECT_EQ(p1.find("a/b"), std::string::npos);
}

TEST(LocalStore, LogicalPathsSnapshot) {
  LocalStore store(temp_dir("store7"));
  ASSERT_TRUE(store.insert("x", 1).ok());
  ASSERT_TRUE(store.insert("y", 2).ok());
  auto paths = store.logical_paths();
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths, (std::vector<std::string>{"x", "y"}));
}

// ---- open-handle cache ---------------------------------------------------

// Writes `n` small distinct files into `dir`, returns their paths.
std::vector<std::string> make_files(const std::string& dir, size_t n) {
  std::vector<std::string> paths;
  for (size_t i = 0; i < n; ++i) {
    const std::string p = dir + "/f" + std::to_string(i) + ".bin";
    std::vector<uint8_t> data(64, uint8_t('a' + i));
    EXPECT_TRUE(write_file(p, data.data(), data.size()).ok());
    paths.push_back(p);
  }
  return paths;
}

TEST(OpenHandleCache, HitMissAccountingAndLruBound) {
  const std::string dir = temp_dir("ohc1");
  const auto files = make_files(dir, 4);
  OpenHandleCache cache(2);
  ASSERT_TRUE(cache.enabled());

  // Two distinct keys: miss then hit.
  ASSERT_TRUE(cache.acquire("k0", files[0]).ok());
  ASSERT_TRUE(cache.acquire("k0", files[0]).ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  // Filling past capacity evicts the least-recently-used handle.
  ASSERT_TRUE(cache.acquire("k1", files[1]).ok());
  ASSERT_TRUE(cache.acquire("k2", files[2]).ok());
  EXPECT_EQ(cache.open_handles(), 2u);
  // k0 was evicted; touching it again is a fresh miss.
  ASSERT_TRUE(cache.acquire("k0", files[0]).ok());
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(OpenHandleCache, DisabledOpensOneShotHandles) {
  const std::string dir = temp_dir("ohc2");
  const auto files = make_files(dir, 1);
  OpenHandleCache cache(0);
  EXPECT_FALSE(cache.enabled());
  auto pin = cache.acquire("k", files[0]);
  ASSERT_TRUE(pin.ok());
  uint8_t buf[8];
  EXPECT_EQ(pin->pread(buf, sizeof(buf), 0).value(), 8u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(cache.open_handles(), 0u);  // never indexed
}

TEST(OpenHandleCache, PinSurvivesInvalidate) {
  const std::string dir = temp_dir("ohc3");
  const auto files = make_files(dir, 1);
  OpenHandleCache cache(4);
  auto pin = cache.acquire("k", files[0]);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(cache.pinned_handles(), 1u);

  cache.invalidate("k");
  EXPECT_EQ(cache.open_handles(), 0u);
  // The pinned handle still reads fine — the fd closes when the pin
  // drops, not when the index entry goes.
  uint8_t buf[16];
  EXPECT_EQ(pin->pread(buf, sizeof(buf), 0).value(), 16u);
  EXPECT_EQ(buf[0], 'a');
}

TEST(OpenHandleCache, EvictionSkipsPinnedEntries) {
  const std::string dir = temp_dir("ohc4");
  const auto files = make_files(dir, 3);
  OpenHandleCache cache(1);
  auto pinned = cache.acquire("k0", files[0]);
  ASSERT_TRUE(pinned.ok());
  // k1/k2 push the cache over budget; the pinned k0 must not be
  // churned, so the index transiently holds the pinned entry plus the
  // newest one.
  ASSERT_TRUE(cache.acquire("k1", files[1]).ok());
  ASSERT_TRUE(cache.acquire("k2", files[2]).ok());
  EXPECT_EQ(cache.pinned_handles(), 1u);
  ASSERT_TRUE(cache.acquire("k0", files[0]).ok());
  EXPECT_EQ(cache.hits(), 1u);  // k0 stayed resident while pinned
}

// The TSAN target: readers pread through pins while another thread
// storms invalidate()/clear() over the same keys. The deferred-close
// contract means no read ever races a close.
TEST(OpenHandleCache, ConcurrentEvictVsPinnedRead) {
  const std::string dir = temp_dir("ohc5");
  constexpr size_t kFiles = 8;
  const auto files = make_files(dir, kFiles);
  OpenHandleCache cache(2);  // tiny: constant eviction pressure

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const size_t idx = size_t(t + i) % kFiles;
        auto pin = cache.acquire("k" + std::to_string(idx), files[idx]);
        if (!pin.ok()) {
          ++read_errors;
          continue;
        }
        uint8_t buf[64];
        const auto n = pin->pread(buf, sizeof(buf), 0);
        if (!n.ok() || *n != 64u || buf[0] != uint8_t('a' + idx)) {
          ++read_errors;
        }
      }
    });
  }
  std::thread evictor([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      cache.invalidate("k" + std::to_string(i % kFiles));
      if (i % 64 == 0) cache.clear();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : readers) th.join();
  evictor.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(cache.pinned_handles(), 0u);
}

TEST(LocalStore, OpenPinnedReadsAndEvictInvalidatesHandle) {
  const std::string root = temp_dir("store8");
  LocalStore store(root, /*capacity_bytes=*/0, /*handle_cache_slots=*/8);
  std::vector<uint8_t> data(128, 0x42);
  ASSERT_TRUE(
      write_file(store.physical_path("a"), data.data(), data.size()).ok());
  ASSERT_TRUE(store.insert("a", data.size()).ok());

  auto pin = store.open_pinned("a");
  ASSERT_TRUE(pin.ok());
  uint8_t buf[128];
  EXPECT_EQ(pin->pread(buf, sizeof(buf), 0).value(), 128u);
  EXPECT_EQ(store.handle_cache().open_handles(), 1u);

  // Evicting the entry drops the cached handle; the held pin still
  // reads (fail-open for in-flight requests).
  ASSERT_TRUE(store.evict("a").ok());
  EXPECT_EQ(store.handle_cache().open_handles(), 0u);
  EXPECT_EQ(pin->pread(buf, sizeof(buf), 64).value(), 64u);

  // A fresh open_pinned after eviction reports kNotFound.
  EXPECT_EQ(store.open_pinned("a").error().code, ErrorCode::kNotFound);
}

TEST(LocalStore, PurgeClearsHandleCache) {
  const std::string root = temp_dir("store9");
  LocalStore store(root, 0, 8);
  std::vector<uint8_t> data(32, 1);
  ASSERT_TRUE(
      write_file(store.physical_path("a"), data.data(), data.size()).ok());
  ASSERT_TRUE(store.insert("a", data.size()).ok());
  ASSERT_TRUE(store.open_pinned("a").ok());
  EXPECT_EQ(store.handle_cache().open_handles(), 1u);
  store.purge();
  EXPECT_EQ(store.handle_cache().open_handles(), 0u);
}

}  // namespace
}  // namespace hvac::storage
