// Fault-domain tests: the deterministic fault-injection harness, the
// per-endpoint circuit breaker, per-call deadlines, server-side
// backpressure/drain, and the headline chaos scenario (one of two
// servers killed mid-epoch must cost one detection penalty, not one
// timeout per read).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "client/hvac_client.h"
#include "common/fault_injection.h"
#include "rpc/async_client.h"
#include "rpc/health.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"
#include "server/hvac_server.h"
#include "server/node_runtime.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_chaos_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

int64_t now_us() { return rpc::steady_now_us(); }

// ---- fault-injection harness ----------------------------------------------

class FaultFixture : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

TEST_F(FaultFixture, DisabledByDefaultAndZeroAfterReset) {
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::check(fault::Site::kRead).ok());
  // A disabled harness must not even count checks — the hot path is
  // one relaxed load, nothing else.
  EXPECT_EQ(fault::stats(fault::Site::kRead).checks, 0u);
  EXPECT_EQ(fault::total_injected(), 0u);
}

TEST_F(FaultFixture, SpecParsing) {
  EXPECT_TRUE(fault::configure("rpc_recv:error:0.01").ok());
  EXPECT_TRUE(fault::configure("open:delay_ms=50:seed=7").ok());
  EXPECT_TRUE(
      fault::configure("read:error=timeout;pfs_read:error=io:0.5").ok());
  EXPECT_TRUE(fault::configure("stat:error:after=3:count=2").ok());
  EXPECT_TRUE(fault::configure("").ok());  // empty spec disables
  EXPECT_FALSE(fault::enabled());

  EXPECT_EQ(fault::configure("nosuchsite:error").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fault::configure("read:frobnicate").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fault::configure("read").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fault::configure("read:error=nosuchcode").error().code,
            ErrorCode::kInvalidArgument);
}

TEST_F(FaultFixture, ErrorRuleFiresWithConfiguredCode) {
  ASSERT_TRUE(fault::configure("rpc_recv:error=timeout").ok());
  const Status s = fault::check(fault::Site::kRpcRecv);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kTimeout);
  // Other sites are untouched.
  EXPECT_TRUE(fault::check(fault::Site::kRead).ok());
  EXPECT_EQ(fault::stats(fault::Site::kRpcRecv).errors, 1u);
  EXPECT_EQ(fault::total_injected(), 1u);
}

TEST_F(FaultFixture, ProbabilisticFiringIsDeterministic) {
  const std::string spec = "read:error:0.3:seed=42";
  auto run = [&] {
    std::vector<bool> fired;
    EXPECT_TRUE(fault::configure(spec).ok());
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!fault::check(fault::Site::kRead).ok());
    }
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // ~30% of 200; enormously generous bounds to stay flake-free while
  // still proving the probability is applied at all.
  const size_t fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 120u);
  // Different seed, different schedule.
  ASSERT_TRUE(fault::configure("read:error:0.3:seed=43").ok());
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) {
    other.push_back(!fault::check(fault::Site::kRead).ok());
  }
  EXPECT_NE(first, other);
}

TEST_F(FaultFixture, AfterAndCountWindowTheRule) {
  ASSERT_TRUE(fault::configure("stat:error:after=2:count=3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(!fault::check(fault::Site::kStat).ok());
  }
  const std::vector<bool> expected{false, false, true, true,
                                   true,  false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FaultFixture, DelayRuleSleepsThenContinues) {
  ASSERT_TRUE(fault::configure("open:delay_ms=40").ok());
  const int64_t t0 = now_us();
  EXPECT_TRUE(fault::check(fault::Site::kOpen).ok());
  EXPECT_GE(now_us() - t0, 35'000);
  EXPECT_EQ(fault::stats(fault::Site::kOpen).delays, 1u);
}

// ---- circuit breaker ------------------------------------------------------

TEST(Breaker, TripsAfterNFailuresThenProbesAndRecovers) {
  rpc::BreakerOptions o;
  o.failures_to_open = 2;
  o.base_backoff_ms = 50;
  o.max_backoff_ms = 100;
  rpc::EndpointHealth h("test:1", o);
  using State = rpc::EndpointHealth::State;

  EXPECT_TRUE(h.allow_request());
  h.record_failure();
  EXPECT_EQ(h.state(), State::kClosed);  // one failure is not enough
  h.record_failure();
  EXPECT_EQ(h.state(), State::kOpen);
  EXPECT_FALSE(h.allow_request());  // shed while open

  // Backoff for the first open is 50ms +/- 25% jitter; 200ms clears it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(h.allow_request());  // the half-open probe
  EXPECT_EQ(h.state(), State::kHalfOpen);
  EXPECT_FALSE(h.allow_request());  // only one probe at a time

  // Failed probe: straight back to open.
  h.record_failure();
  EXPECT_EQ(h.state(), State::kOpen);
  EXPECT_EQ(h.snapshot().opens, 2u);

  // Second backoff is capped at 100ms +25%; wait it out, probe, heal.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(h.allow_request());
  h.record_success();
  EXPECT_EQ(h.state(), State::kClosed);
  EXPECT_TRUE(h.allow_request());
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  rpc::BreakerOptions o;
  o.failures_to_open = 3;
  rpc::EndpointHealth h("test:2", o);
  for (int round = 0; round < 5; ++round) {
    h.record_failure();
    h.record_failure();
    h.record_success();  // streak broken before the threshold
  }
  EXPECT_EQ(h.state(), rpc::EndpointHealth::State::kClosed);
  EXPECT_EQ(h.snapshot().opens, 0u);
}

TEST(Breaker, DisabledWhenThresholdIsZero) {
  rpc::BreakerOptions o;
  o.failures_to_open = 0;
  rpc::EndpointHealth h("test:3", o);
  for (int i = 0; i < 50; ++i) h.record_failure();
  EXPECT_EQ(h.state(), rpc::EndpointHealth::State::kClosed);
  EXPECT_TRUE(h.allow_request());
}

TEST(Breaker, OpenCircuitFailsCallsInstantlyWithoutDialing) {
  ::setenv("HVAC_BREAKER_FAILURES", "1", 1);
  ::setenv("HVAC_BREAKER_BASE_MS", "60000", 1);
  ::setenv("HVAC_BREAKER_MAX_MS", "60000", 1);
  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t shed_before =
      counters.breaker_shed.load(std::memory_order_relaxed);

  // Port 1 refuses instantly on loopback; the first call records the
  // transport failure and trips the one-strike breaker.
  rpc::RpcClientOptions co;
  co.connect_timeout_ms = 500;
  rpc::RpcClient client(rpc::Endpoint{"127.0.0.1:1"}, co);
  EXPECT_FALSE(client.call(1, rpc::Bytes{}).ok());
  EXPECT_EQ(client.health().state(), rpc::EndpointHealth::State::kOpen);

  // While open, calls fail in microseconds — no connect, no timeout.
  const int64_t t0 = now_us();
  const auto resp = client.call(1, rpc::Bytes{});
  const int64_t elapsed_us = now_us() - t0;
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(resp.error().message.find("circuit open"), std::string::npos);
  EXPECT_LT(elapsed_us, 50'000);
  EXPECT_GT(counters.breaker_shed.load(std::memory_order_relaxed),
            shed_before);

  ::unsetenv("HVAC_BREAKER_FAILURES");
  ::unsetenv("HVAC_BREAKER_BASE_MS");
  ::unsetenv("HVAC_BREAKER_MAX_MS");
  rpc::HealthRegistry::global().reset();
}

// ---- per-call deadline ----------------------------------------------------

// A server that drips one byte every 20 ms defeats SO_RCVTIMEO (each
// recv makes "progress") — only the whole-call deadline stops it.
TEST(CallDeadline, SlowDripServerIsCutByCallTimeout) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  std::thread drip([listen_fd] {
    const int c = ::accept(listen_fd, nullptr, nullptr);
    if (c < 0) return;
    char req[256];
    (void)::recv(c, req, sizeof(req), 0);
    for (int i = 0; i < 150; ++i) {
      const char byte = 0;
      if (::send(c, &byte, 1, MSG_NOSIGNAL) <= 0) break;
      ::usleep(20'000);
    }
    ::close(c);
  });

  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t misses_before =
      counters.deadline_misses.load(std::memory_order_relaxed);

  rpc::RpcClientOptions co;
  co.connect_timeout_ms = 1000;
  co.recv_timeout_ms = 10'000;  // per-recv bound alone would never trip
  co.call_timeout_ms = 300;
  rpc::RpcClient client(
      rpc::Endpoint{"127.0.0.1:" + std::to_string(port)}, co);
  const int64_t t0 = now_us();
  const auto resp = client.call(1, rpc::Bytes{});
  const int64_t elapsed_ms = (now_us() - t0) / 1000;
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kTimeout);
  EXPECT_GE(elapsed_ms, 250);
  EXPECT_LT(elapsed_ms, 3000);  // nowhere near the 10 s recv budget
  EXPECT_GT(counters.deadline_misses.load(std::memory_order_relaxed),
            misses_before);

  ::close(listen_fd);
  drip.join();
  rpc::HealthRegistry::global().reset();
}

// ---- server backpressure & drain ------------------------------------------

TEST(Backpressure, SaturatedServerShedsWithUnavailable) {
  rpc::RpcServerOptions so;
  so.bind_address = "127.0.0.1:0";
  so.handler_threads = 2;
  so.max_inflight_per_conn = 2;
  rpc::RpcServer server(so);
  server.register_handler(1, [](const rpc::Bytes& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Result<rpc::Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());

  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t shed_before =
      counters.server_shed.load(std::memory_order_relaxed);

  rpc::AsyncRpcClient client(server.endpoint());
  std::vector<std::future<Result<rpc::Bytes>>> futures;
  for (uint8_t i = 0; i < 32; ++i) {
    futures.push_back(client.call_async(1, rpc::Bytes{i}));
  }
  size_t ok = 0, shed = 0;
  for (auto& fut : futures) {
    const auto resp = fut.get();  // every call resolves, none hang
    if (resp.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp.error().code, ErrorCode::kUnavailable);
      EXPECT_NE(resp.error().message.find("saturated"), std::string::npos);
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(server.requests_shed(), shed);
  EXPECT_EQ(counters.server_shed.load(std::memory_order_relaxed),
            shed_before + shed);
  server.stop();
  rpc::HealthRegistry::global().reset();
}

TEST(Drain, InFlightResponsesDeliveredNewRequestsShed) {
  rpc::RpcServerOptions so;
  so.bind_address = "127.0.0.1:0";
  so.handler_threads = 4;
  rpc::RpcServer server(so);
  server.register_handler(1, [](const rpc::Bytes& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Result<rpc::Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());

  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t drains_before =
      counters.drains.load(std::memory_order_relaxed);
  const uint64_t drained_before =
      counters.drained_requests.load(std::memory_order_relaxed);

  rpc::AsyncRpcClient client(server.endpoint());
  std::vector<std::future<Result<rpc::Bytes>>> inflight;
  for (uint8_t i = 0; i < 3; ++i) {
    inflight.push_back(client.call_async(1, rpc::Bytes{i}));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.drain(3000);
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.inflight(), 0u);  // drain waited them out

  // Everything dispatched before the drain completed normally.
  for (uint8_t i = 0; i < 3; ++i) {
    const auto resp = inflight[i].get();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ((*resp)[0], i);
  }
  EXPECT_GT(counters.drains.load(std::memory_order_relaxed), drains_before);
  EXPECT_GE(counters.drained_requests.load(std::memory_order_relaxed),
            drained_before + 3);

  // The connection stays answerable: post-drain requests are shed with
  // a real response, not a hang or a slammed socket.
  const auto late = client.call(1, rpc::Bytes{9});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(late.error().message.find("draining"), std::string::npos);

  server.stop();
  rpc::HealthRegistry::global().reset();
}

TEST(Backpressure, DataMoverQueueRejectsWhenSaturated) {
  const std::string pfs_root = temp_dir("mover_pfs");
  std::vector<std::string> rels;
  for (int i = 0; i < 12; ++i) {
    const std::string rel = "m" + std::to_string(i) + ".bin";
    const auto bytes = workload::expected_contents(rel, 2048);
    ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, bytes.data(),
                                    bytes.size())
                    .ok());
    rels.push_back(rel);
  }

  // One mover, a one-slot FIFO, and a PFS that takes ~40 ms per fetch:
  // four handler threads submitting concurrently must overflow it.
  storage::PfsOptions po;
  po.metadata_latency_us = 40'000;
  storage::PfsBackend pfs(pfs_root, po);
  server::HvacServerOptions so;
  so.cache_dir = temp_dir("mover_cache");
  so.data_mover_threads = 1;
  so.mover_queue_capacity = 1;
  so.rpc_handler_threads = 4;
  server::HvacServer server(&pfs, so);
  ASSERT_TRUE(server.start().ok());

  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t rejects_before =
      counters.mover_rejects.load(std::memory_order_relaxed);

  // Concurrent single prefetches: prefetch_many now batches per server
  // (one kPrefetchBatch call submits its fetches sequentially inside a
  // single handler), so saturating the one-slot queue needs the calls
  // fanned out individually across the four handler threads.
  rpc::AsyncRpcClient direct(rpc::Endpoint{server.address()});
  std::vector<std::future<Result<rpc::Bytes>>> futs;
  for (const auto& rel : rels) {
    rpc::WireWriter w;
    w.put_string(rel);
    futs.push_back(direct.call_async(proto::kPrefetch, w.bytes()));
  }
  size_t warmed = 0;
  for (auto& fut : futs) {
    const auto resp = fut.get();
    if (resp.ok() && !resp->empty() && (*resp)[0] == 1) ++warmed;
  }

  const uint64_t rejects =
      counters.mover_rejects.load(std::memory_order_relaxed) -
      rejects_before;
  EXPECT_GT(rejects, 0u);
  EXPECT_LT(warmed, rels.size());  // the rejected ones were not warmed
  EXPECT_EQ(warmed + rejects, rels.size());
  server.stop();
  rpc::HealthRegistry::global().reset();
}

// ---- the headline chaos scenario ------------------------------------------

// Two servers, one killed mid-epoch. The 1000-read workload must (a)
// complete with byte-exact results, (b) pay the detection penalty
// once — after the breaker trips, reads homed at the dead server fail
// over to the PFS in microseconds — and (c) leave the breaker
// transitions visible in the metrics frame.
TEST(Chaos, KillOneOfTwoServersMidEpoch) {
  const std::string pfs_root = temp_dir("kill_pfs");
  constexpr int kFiles = 16;
  constexpr size_t kFileSize = 8192;
  std::vector<std::string> rels;
  std::vector<std::vector<uint8_t>> contents;
  for (int i = 0; i < kFiles; ++i) {
    const std::string rel = "f" + std::to_string(i) + ".bin";
    contents.push_back(workload::expected_contents(rel, kFileSize));
    ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel,
                                    contents.back().data(), kFileSize)
                    .ok());
    rels.push_back(rel);
  }

  // One strike opens the circuit and a 60 s backoff keeps it open for
  // the rest of the test — the schedule is deterministic.
  ::setenv("HVAC_BREAKER_FAILURES", "1", 1);
  ::setenv("HVAC_BREAKER_BASE_MS", "60000", 1);
  ::setenv("HVAC_BREAKER_MAX_MS", "60000", 1);
  rpc::HealthRegistry::global().reset();
  auto& counters = rpc::ResilienceCounters::global();
  const uint64_t opens_before =
      counters.breaker_opens.load(std::memory_order_relaxed);
  const uint64_t shed_before =
      counters.breaker_shed.load(std::memory_order_relaxed);

  server::NodeRuntimeOptions no;
  no.pfs_root = pfs_root;
  no.cache_root = temp_dir("kill_cache");
  no.instances = 2;
  server::NodeRuntime node(no);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node.endpoints();
  co.readahead_chunks = 0;  // keep the latency profile single-path
  co.rpc.connect_timeout_ms = 1000;
  co.rpc.recv_timeout_ms = 1000;
  co.rpc.call_timeout_ms = 2000;
  co.rpc.max_retries = 0;
  client::HvacClient client(co);

  auto read_all = [&](int i) {
    const std::string path = pfs_root + "/" + rels[i % kFiles];
    auto vfd = client.open(path);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    std::vector<uint8_t> data(kFileSize);
    const auto n = client.pread(*vfd, data.data(), data.size(), 0);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    ASSERT_EQ(*n, kFileSize);
    EXPECT_EQ(data, contents[i % kFiles]);
    ASSERT_TRUE(client.close(*vfd).ok());
  };

  // Healthy epoch: warm every file and record the baseline latency.
  std::vector<int64_t> healthy_us;
  for (int i = 0; i < kFiles; ++i) {
    const int64_t t0 = now_us();
    read_all(i);
    healthy_us.push_back(now_us() - t0);
  }
  std::sort(healthy_us.begin(), healthy_us.end());
  const int64_t healthy_p99 = healthy_us[healthy_us.size() - 1];

  // Kill instance 0 mid-epoch.
  node.instance(0).stop();

  // 1000 reads, all byte-exact. The first touch of a dead-homed file
  // pays the detection (instant ECONNREFUSED on loopback); everything
  // after rides the open breaker straight to the PFS.
  constexpr int kReads = 1000;
  std::vector<int64_t> degraded_us;
  degraded_us.reserve(kReads);
  for (int i = 0; i < kReads; ++i) {
    const int64_t t0 = now_us();
    read_all(i);
    degraded_us.push_back(now_us() - t0);
  }

  // Exactly one breaker trip: one dead endpoint, one-strike threshold,
  // backoff longer than the test.
  EXPECT_EQ(counters.breaker_opens.load(std::memory_order_relaxed),
            opens_before + 1);
  // The trip actually routed traffic: later calls were shed.
  EXPECT_GT(counters.breaker_shed.load(std::memory_order_relaxed),
            shed_before);

  // Post-detection p99 within 5x the healthy ceiling (generous floor
  // keeps slow CI machines from flaking the assertion).
  std::sort(degraded_us.begin(), degraded_us.end());
  const int64_t degraded_p99 = degraded_us[(kReads * 99) / 100];
  EXPECT_LT(degraded_p99, std::max<int64_t>(5 * healthy_p99, 20'000))
      << "healthy p99 " << healthy_p99 << "us, degraded p99 "
      << degraded_p99 << "us";

  // The fault domain is visible in the metrics frame the surviving
  // instance serves (resilience counters are process-wide here).
  const core::MetricsFrame frame = node.aggregated_frame();
  EXPECT_GE(frame.resilience.breaker_opens, 1u);
  EXPECT_GT(frame.resilience.breaker_shed, 0u);
  const std::string json = frame.to_json();
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker_opens\""), std::string::npos);

  node.stop();
  ::unsetenv("HVAC_BREAKER_FAILURES");
  ::unsetenv("HVAC_BREAKER_BASE_MS");
  ::unsetenv("HVAC_BREAKER_MAX_MS");
  rpc::HealthRegistry::global().reset();
}

// Injected read faults flow end-to-end: a spec that fails the first
// two client reads forces the bounded recovery path, the workload
// still completes byte-exact, and the injections are visible in the
// stats dump.
TEST(Chaos, InjectedReadFaultsFailOpen) {
  const std::string pfs_root = temp_dir("inject_pfs");
  const std::string rel = "x.bin";
  const auto expected = workload::expected_contents(rel, 16'384);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());

  server::NodeRuntimeOptions no;
  no.pfs_root = pfs_root;
  no.cache_root = temp_dir("inject_cache");
  server::NodeRuntime node(no);
  ASSERT_TRUE(node.start().ok());

  rpc::HealthRegistry::global().reset();
  ASSERT_TRUE(fault::configure("read:error=unavailable:count=2").ok());

  client::HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node.endpoints();
  client::HvacClient client(co);
  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());
  std::vector<uint8_t> data(expected.size());
  // First two preads eat the injected fault; the third succeeds.
  EXPECT_FALSE(client.pread(*vfd, data.data(), data.size(), 0).ok());
  EXPECT_FALSE(client.pread(*vfd, data.data(), data.size(), 0).ok());
  const auto n = client.pread(*vfd, data.data(), data.size(), 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(*n, expected.size());
  EXPECT_EQ(data, expected);
  ASSERT_TRUE(client.close(*vfd).ok());

  EXPECT_EQ(fault::stats(fault::Site::kRead).errors, 2u);
  EXPECT_EQ(fault::total_injected(), 2u);
  const std::string json = client::stats_to_json(client.stats());
  EXPECT_NE(json.find("\"faults_injected\":2"), std::string::npos);

  fault::reset();
  node.stop();
  rpc::HealthRegistry::global().reset();
}

// ---- zero-copy fault sites ------------------------------------------------

// Every kernel transfer capped at 1.5 KiB: the sendfile loop resumes
// dozens of times per response and the client must still assemble the
// exact bytes. Exercises the short-transfer resume path under a real
// client/server pair rather than a bare socketpair.
TEST(Chaos, ZeroCopyShortTransfersStayByteExact) {
  const std::string pfs_root = temp_dir("zcshort_pfs");
  const std::string rel = "s.bin";
  const auto expected = workload::expected_contents(rel, 96'000);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());

  server::NodeRuntimeOptions no;
  no.pfs_root = pfs_root;
  no.cache_root = temp_dir("zcshort_cache");
  server::NodeRuntime node(no);
  ASSERT_TRUE(node.start().ok());

  rpc::HealthRegistry::global().reset();
  ASSERT_TRUE(fault::configure("zc_send:short=1536").ok());

  client::HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node.endpoints();
  client::HvacClient client(co);

  std::vector<uint8_t> data(expected.size());
  for (int pass = 0; pass < 6; ++pass) {
    auto vfd = client.open(pfs_root + "/" + rel);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    std::fill(data.begin(), data.end(), 0);
    const auto n = client.pread(*vfd, data.data(), data.size(), 0);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    ASSERT_EQ(*n, expected.size());
    ASSERT_EQ(data, expected) << "pass " << pass;
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  // The cap actually bit: cache-hit responses go out via sendfile.
  EXPECT_GT(fault::stats(fault::Site::kZcSend).shorts, 0u);

  fault::reset();
  node.stop();
  rpc::HealthRegistry::global().reset();
}

// A zero-copy send that dies mid-response poisons the stream — the
// frame header is already on the wire, so the server's only safe move
// is dropping the connection. The client sees a transport error
// mid-read, walks the bounded recovery path (re-open, re-read), and
// the application still gets byte-exact data.
TEST(Chaos, ZeroCopySendFailureMidTransferFailsOverByteExact) {
  const std::string pfs_root = temp_dir("zcfail_pfs");
  const std::string rel = "z.bin";
  const auto expected = workload::expected_contents(rel, 200'000);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());

  server::NodeRuntimeOptions no;
  no.pfs_root = pfs_root;
  no.cache_root = temp_dir("zcfail_cache");
  server::NodeRuntime node(no);
  ASSERT_TRUE(node.start().ok());

  rpc::HealthRegistry::global().reset();

  client::HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node.endpoints();
  co.readahead_chunks = 0;  // one RPC per chunk: deterministic fault hits
  co.rpc.connect_timeout_ms = 1000;
  co.rpc.recv_timeout_ms = 1000;
  client::HvacClient client(co);

  std::vector<uint8_t> data(expected.size());
  // Warm until the server serves from cache — only cached reads ride
  // the sendfile path, so the fault site is dark until then.
  for (int i = 0; i < 200; ++i) {
    auto vfd = client.open(pfs_root + "/" + rel);
    ASSERT_TRUE(vfd.ok());
    ASSERT_TRUE(client.pread(*vfd, data.data(), data.size(), 0).ok());
    ASSERT_TRUE(client.close(*vfd).ok());
    if (node.aggregated_metrics().bytes_from_cache >= expected.size()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The next two sendfile calls fail mid-response.
  ASSERT_TRUE(fault::configure("zc_send:error=io:count=2").ok());

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  std::fill(data.begin(), data.end(), 0);
  const auto n = client.pread(*vfd, data.data(), data.size(), 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(*n, expected.size());
  EXPECT_EQ(data, expected);
  ASSERT_TRUE(client.close(*vfd).ok());
  EXPECT_GE(fault::stats(fault::Site::kZcSend).errors, 1u);

  // With the injection exhausted the path is healthy again.
  auto vfd2 = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd2.ok());
  std::fill(data.begin(), data.end(), 0);
  const auto n2 = client.pread(*vfd2, data.data(), data.size(), 0);
  ASSERT_TRUE(n2.ok()) << n2.error().to_string();
  EXPECT_EQ(data, expected);
  ASSERT_TRUE(client.close(*vfd2).ok());

  fault::reset();
  node.stop();
  rpc::HealthRegistry::global().reset();
}

}  // namespace
}  // namespace hvac
