// Configuration-matrix sweep over the functional system: every
// combination of (nodes, instances-per-node, placement policy,
// segmentation) must serve byte-correct data with full cache
// accounting. This is the "does every deployment shape actually
// work" test a release gets run through before shipping.
#include <gtest/gtest.h>

#include <filesystem>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;

struct MatrixParam {
  uint32_t nodes;
  uint32_t instances;
  core::PlacementPolicy policy;
  uint64_t segment_bytes;  // 0 = whole-file caching
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string name = "n" + std::to_string(p.nodes) + "_i" +
                     std::to_string(p.instances) + "_" +
                     core::placement_policy_name(p.policy);
  if (p.segment_bytes > 0) name += "_seg";
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class DeployMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(DeployMatrix, EndToEndcorrectness) {
  const MatrixParam& p = GetParam();
  const std::string tag = param_name({GetParam(), 0});
  const std::string pfs_root = ::testing::TempDir() + "hvac_mx_" + tag;
  fs::remove_all(pfs_root);

  // Mixed file sizes so segmentation (8 KB segments) actually splits
  // some files and passes others through whole.
  const auto spec = workload::synthetic_small(18, 12 * 1024, 0.8);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.placement = p.policy;
  copts.segment_bytes = p.segment_bytes;
  for (uint32_t n = 0; n < p.nodes; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = ::testing::TempDir() + "hvac_mx_cache_" + tag + "_" +
                   std::to_string(n);
    fs::remove_all(o.cache_root);
    o.instances = p.instances;
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    ASSERT_TRUE(nodes.back()->start().ok());
    for (const auto& e : nodes.back()->endpoints()) {
      copts.server_endpoints.push_back(e);
    }
  }
  client::HvacClient client(copts);

  // Two epochs: misses then hits; verify every byte both times.
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (size_t i = 0; i < tree->relative_paths.size(); ++i) {
      const std::string& rel = tree->relative_paths[i];
      auto vfd = client.open(pfs_root + "/" + rel);
      ASSERT_TRUE(vfd.ok()) << rel << ": " << vfd.error().to_string();
      std::vector<uint8_t> data(tree->sizes[i]);
      const auto n = client.pread(*vfd, data.data(), data.size(), 0);
      ASSERT_TRUE(n.ok()) << n.error().to_string();
      ASSERT_EQ(*n, tree->sizes[i]) << rel;
      EXPECT_TRUE(workload::verify_contents(rel, data)) << rel;
      ASSERT_TRUE(client.close(*vfd).ok());
    }
  }

  // No fail-open should have been needed, and the caches served the
  // second epoch.
  EXPECT_EQ(client.stats().fallback_opens, 0u);
  core::MetricsSnapshot total;
  for (auto& node : nodes) {
    const auto m = node->aggregated_metrics();
    total.hits += m.hits;
    total.misses += m.misses;
  }
  EXPECT_GT(total.misses, 0u);
  // Epoch 2 was served without new PFS copies: as server-side open
  // hits where the client still round-tripped, or as client meta-cache
  // hits where the re-open was skipped entirely (path-mode reads out
  // of the already-cached copy).
  EXPECT_GE(total.hits + client.stats().meta_hits, total.misses);
  for (auto& node : nodes) node->stop();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeployMatrix,
    ::testing::Values(
        MatrixParam{1, 1, core::PlacementPolicy::kHashModulo, 0},
        MatrixParam{1, 4, core::PlacementPolicy::kHashModulo, 0},
        MatrixParam{2, 2, core::PlacementPolicy::kHashModulo, 0},
        MatrixParam{3, 1, core::PlacementPolicy::kHashModulo, 0},
        MatrixParam{2, 2, core::PlacementPolicy::kRendezvous, 0},
        MatrixParam{3, 2, core::PlacementPolicy::kRendezvous, 0},
        MatrixParam{2, 2, core::PlacementPolicy::kJump, 0},
        MatrixParam{1, 2, core::PlacementPolicy::kHashModulo, 8 * 1024},
        MatrixParam{3, 1, core::PlacementPolicy::kHashModulo, 8 * 1024},
        MatrixParam{2, 2, core::PlacementPolicy::kRendezvous, 8 * 1024},
        MatrixParam{3, 2, core::PlacementPolicy::kJump, 8 * 1024}),
    param_name);

}  // namespace
}  // namespace hvac
