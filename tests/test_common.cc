// Unit tests for the common substrate: hashing, RNG, queues, thread
// pool, statistics, env/path helpers, Result plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "common/buffer_pool.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace hvac {
namespace {

// ---- hash ----------------------------------------------------------------

TEST(Hash, Fnv1a64KnownVectors) {
  // Reference values for the canonical FNV-1a 64-bit function.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, StableAcrossCalls) {
  const uint64_t h1 = stable_hash("class_0001/img_000042.jpg");
  const uint64_t h2 = stable_hash("class_0001/img_000042.jpg");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(stable_hash("a"), stable_hash("b"));
}

TEST(Hash, Mix64Bijective) {
  // mix64 is a bijection; distinct inputs in a small range must stay
  // distinct.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 4096; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Hash, CombineOrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, JumpConsistentHashInRange) {
  for (uint64_t key = 0; key < 1000; ++key) {
    const int32_t b = jump_consistent_hash(mix64(key), 17);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 17);
  }
}

TEST(Hash, JumpConsistentHashMinimalMovement) {
  // Growing the bucket count must only move keys into the new bucket.
  int moved_elsewhere = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    const int32_t before = jump_consistent_hash(mix64(key), 16);
    const int32_t after = jump_consistent_hash(mix64(key), 17);
    if (before != after && after != 16) ++moved_elsewhere;
  }
  EXPECT_EQ(moved_elsewhere, 0);
}

TEST(Hash, JumpConsistentHashInvalidBuckets) {
  EXPECT_EQ(jump_consistent_hash(123, 0), -1);
  EXPECT_EQ(jump_consistent_hash(123, -5), -1);
}

// ---- rng ------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowBounds) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  SplitMix64 rng(11);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, LognormalMeanMatches) {
  SplitMix64 rng(13);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.next_lognormal_with_mean(163.0 * 1024, 0.6));
  }
  EXPECT_NEAR(s.mean() / (163.0 * 1024), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  SplitMix64 rng(15);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.next_exponential(3.5));
  EXPECT_NEAR(s.mean(), 3.5, 0.15);
}

TEST(Rng, FisherYatesIsPermutation) {
  std::vector<int> v(500);
  for (int i = 0; i < 500; ++i) v[i] = i;
  SplitMix64 rng(17);
  fisher_yates_shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 499);
}

TEST(Rng, FisherYatesDeterministic) {
  std::vector<int> a(100), b(100);
  for (int i = 0; i < 100; ++i) a[i] = b[i] = i;
  SplitMix64 r1(21), r2(21);
  fisher_yates_shuffle(a, r1);
  fisher_yates_shuffle(b, r2);
  EXPECT_EQ(a, b);
}

// ---- result ----------------------------------------------------------------

Result<int> parse_positive(int x) {
  if (x <= 0) return Error(ErrorCode::kInvalidArgument, "not positive");
  return x;
}

Result<int> doubled(int x) {
  HVAC_ASSIGN_OR_RETURN(int v, parse_positive(x));
  return v * 2;
}

TEST(Result, ValueAndError) {
  EXPECT_TRUE(parse_positive(3).ok());
  EXPECT_EQ(parse_positive(3).value(), 3);
  EXPECT_FALSE(parse_positive(-1).ok());
  EXPECT_EQ(parse_positive(-1).error().code, ErrorCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(doubled(5).value(), 10);
  EXPECT_FALSE(doubled(0).ok());
}

TEST(Result, ErrnoRoundTrip) {
  EXPECT_EQ(error_code_to_errno(ErrorCode::kNotFound), ENOENT);
  EXPECT_EQ(errno_to_error_code(ENOENT), ErrorCode::kNotFound);
  EXPECT_EQ(errno_to_error_code(EACCES), ErrorCode::kPermission);
  EXPECT_EQ(error_code_to_errno(errno_to_error_code(ENOSPC)), ENOSPC);
}

TEST(Result, StatusOkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e = Error(ErrorCode::kTimeout, "x");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, ErrorCode::kTimeout);
}

// ---- mpmc queue -------------------------------------------------------------

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q(10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i).ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueue, TryPushFullReportsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1).ok());
  EXPECT_TRUE(q.try_push(2).ok());
  const Status s = q.try_push(3);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kCapacity);
}

TEST(MpmcQueue, CloseDrainsThenCancels) {
  MpmcQueue<int> q(10);
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_TRUE(q.push(2).ok());
  q.close();
  EXPECT_FALSE(q.push(3).ok());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  const auto r = q.pop();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kCancelled);
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    const auto r = q.pop();
    EXPECT_FALSE(r.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto v = q.pop();
        if (!v.ok()) return;
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.submit([&done] { ++done; }).ok());
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}).ok());
}

// ---- stats ----------------------------------------------------------------

TEST(Stats, WelfordMatchesClosedForm) {
  OnlineStats s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, MergeEqualsSequential) {
  OnlineStats a, b, all;
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Stats, Ci95ShrinksWithSamples) {
  OnlineStats small, large;
  SplitMix64 rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.next_gaussian());
  for (int i = 0; i < 1000; ++i) large.add(rng.next_gaussian());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Stats, Percentiles) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, CdfAtPoints) {
  std::vector<double> samples{1, 2, 3, 4};
  const auto cdf = cdf_at(samples, {0.5, 2.0, 10.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(Stats, GiniOfUniformIsZero) {
  EXPECT_NEAR(gini({5, 5, 5, 5}), 0.0, 1e-12);
  // All mass on one holder approaches 1 - 1/n.
  EXPECT_NEAR(gini({0, 0, 0, 100}), 0.75, 1e-12);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(25);   // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.to_ascii().empty());
}

// ---- env / path --------------------------------------------------------------

TEST(Env, SplitCsv) {
  const auto v = split_csv("a:1,b:2,c:3");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a:1");
  EXPECT_EQ(v[2], "c:3");
  EXPECT_TRUE(split_csv("").empty());
  EXPECT_EQ(split_csv("x,").size(), 1u);
}

TEST(Env, PathJoin) {
  EXPECT_EQ(path_join("/a", "b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "/b"), "/a/b");
  EXPECT_EQ(path_join("", "b"), "b");
}

TEST(Env, LexicallyNormal) {
  EXPECT_EQ(lexically_normal("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(lexically_normal("/a/b/../c"), "/a/c");
  EXPECT_EQ(lexically_normal("a/./b"), "a/b");
  EXPECT_EQ(lexically_normal("/"), "/");
  EXPECT_EQ(lexically_normal(""), ".");
}

TEST(Env, PathUnder) {
  EXPECT_TRUE(path_under("/data/set/f.bin", "/data/set"));
  EXPECT_TRUE(path_under("/data/set", "/data/set"));
  EXPECT_FALSE(path_under("/data/setx/f.bin", "/data/set"));
  EXPECT_FALSE(path_under("/other", "/data/set"));
  EXPECT_TRUE(path_under("/data/set/../set/f.bin", "/data/set"));
}

TEST(Env, IntAndBoolParsing) {
  ::setenv("HVAC_TEST_INT", "42", 1);
  EXPECT_EQ(env_int_or("HVAC_TEST_INT", 0), 42);
  ::setenv("HVAC_TEST_INT", "nonsense", 1);
  EXPECT_EQ(env_int_or("HVAC_TEST_INT", 7), 7);
  ::setenv("HVAC_TEST_BOOL", "true", 1);
  EXPECT_TRUE(env_bool_or("HVAC_TEST_BOOL", false));
  ::setenv("HVAC_TEST_BOOL", "0", 1);
  EXPECT_FALSE(env_bool_or("HVAC_TEST_BOOL", true));
  EXPECT_TRUE(env_bool_or("HVAC_TEST_UNSET_XYZ", true));
}

// ---- parameterized uniformity sweep -------------------------------------------

class HashUniformity : public ::testing::TestWithParam<int> {};

TEST_P(HashUniformity, StableHashBalancedModuloN) {
  const int buckets = GetParam();
  std::vector<int> counts(buckets, 0);
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "file_" + std::to_string(i) + ".bin";
    ++counts[stable_hash(key) % buckets];
  }
  // Chi-squared against uniform; dof = buckets-1. Bound is generous
  // (3x dof) — catches systematic skew, not noise.
  const double expected = double(kKeys) / buckets;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 3.0 * buckets) << "buckets=" << buckets;
}

INSTANTIATE_TEST_SUITE_P(Buckets, HashUniformity,
                         ::testing::Values(2, 3, 7, 16, 64, 128, 1024));

// ---- buffer pool ---------------------------------------------------------

TEST(BufferPool, AcquireRoundsUpToClassAndRecycles) {
  BufferPool pool({.max_per_class = 4});
  void* first_data = nullptr;
  {
    auto lease = pool.acquire(5000);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease.size(), 5000u);
    EXPECT_EQ(lease.capacity(), 8192u);  // next power-of-two class
    first_data = lease.data();
  }  // returned to the free list
  auto again = pool.acquire(6000);
  EXPECT_EQ(again.data(), first_data);  // same backing buffer reused
  const auto s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.recycled, 1u);
}

TEST(BufferPool, OversizeAndDisabledGoUnpooled) {
  BufferPool pool({.max_per_class = 4, .max_class_bytes = 1u << 20});
  { auto big = pool.acquire(2u << 20); EXPECT_EQ(big.size(), 2u << 20); }
  EXPECT_EQ(pool.stats().unpooled, 1u);
  EXPECT_EQ(pool.stats().recycled, 0u);

  BufferPool off({.max_per_class = 0});
  { auto lease = off.acquire(4096); EXPECT_EQ(lease.size(), 4096u); }
  EXPECT_EQ(off.stats().unpooled, 1u);
}

TEST(BufferPool, FreeListIsBounded) {
  BufferPool pool({.max_per_class = 2});
  {
    auto a = pool.acquire(100);
    auto b = pool.acquire(100);
    auto c = pool.acquire(100);
  }  // three leases die; only two fit in the free list
  const auto s = pool.stats();
  EXPECT_EQ(s.recycled, 2u);
  EXPECT_EQ(s.dropped, 1u);
}

TEST(BufferPool, ResizeShrinksLogicalSizeOnly) {
  BufferPool pool(BufferPoolOptions{});
  auto lease = pool.acquire(1000);
  lease.resize(10);
  EXPECT_EQ(lease.size(), 10u);
  EXPECT_EQ(lease.capacity(), 4096u);
  lease.resize(1u << 30);  // cannot grow past the class capacity
  EXPECT_EQ(lease.size(), 4096u);
}

TEST(BufferPool, DetachKeepsBytesOutOfPool) {
  BufferPool pool({.max_per_class = 4});
  auto lease = pool.acquire(16);
  std::memset(lease.data(), 0xab, 16);
  std::vector<uint8_t> bytes = lease.detach();
  ASSERT_EQ(bytes.size(), 16u);
  EXPECT_EQ(bytes[0], 0xab);
  EXPECT_FALSE(lease.valid());
  EXPECT_EQ(pool.stats().recycled, 0u);  // buffer left with the caller
}

TEST(BufferPool, ConcurrentAcquireReleaseIsSafe) {
  BufferPool pool({.max_per_class = 8});
  constexpr int kThreads = 8, kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        auto lease = pool.acquire(size_t(1) << (10 + (t + i) % 4));
        lease.data()[0] = uint8_t(i);
        lease.resize(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.hits + s.misses + s.unpooled, uint64_t(kThreads) * kIters);
}

}  // namespace
}  // namespace hvac
