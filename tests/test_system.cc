// End-to-end tests of the functional HVAC system: real files, real
// TCP RPC, multi-node/multi-instance allocations, fail-over, and the
// Fig 14 invariant (training curves identical through the cache).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "train/trainer.h"
#include "workload/file_tree.h"
#include "workload/shuffler.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;
using server::NodeRuntime;
using server::NodeRuntimeOptions;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_sys_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// One "allocation": several NodeRuntimes (each = one simulated compute
// node with i server instances) over a shared PFS directory.
struct Allocation {
  std::string pfs_root;
  std::string cache_root;
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  workload::GeneratedTree tree;

  Allocation(const std::string& name, uint32_t num_nodes,
             uint32_t instances, uint64_t files = 24,
             uint64_t mean_bytes = 4096,
             uint64_t capacity_per_instance = 0) {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    auto spec = workload::synthetic_small(files, mean_bytes, 0.3);
    auto generated = workload::generate_tree(pfs_root, spec);
    EXPECT_TRUE(generated.ok());
    tree = std::move(generated).value();
    for (uint32_t n = 0; n < num_nodes; ++n) {
      NodeRuntimeOptions o;
      o.pfs_root = pfs_root;
      o.cache_root = cache_root + "/node" + std::to_string(n);
      o.instances = instances;
      o.cache_capacity_bytes_per_instance = capacity_per_instance;
      nodes.push_back(std::make_unique<NodeRuntime>(o));
      EXPECT_TRUE(nodes.back()->start().ok());
    }
  }

  std::vector<std::string> endpoints() const {
    std::vector<std::string> all;
    for (const auto& node : nodes) {
      for (const auto& e : node->endpoints()) all.push_back(e);
    }
    return all;
  }

  HvacClientOptions client_options() const {
    HvacClientOptions o;
    o.dataset_dir = pfs_root;
    o.server_endpoints = endpoints();
    return o;
  }

  std::string abs(const std::string& rel) const {
    return pfs_root + "/" + rel;
  }

  core::MetricsSnapshot total_metrics() const {
    core::MetricsSnapshot total;
    for (const auto& node : nodes) {
      const auto m = node->aggregated_metrics();
      total.hits += m.hits;
      total.misses += m.misses;
      total.dedup_waits += m.dedup_waits;
      total.evictions += m.evictions;
      total.bytes_from_cache += m.bytes_from_cache;
      total.bytes_from_pfs += m.bytes_from_pfs;
      total.pfs_fallbacks += m.pfs_fallbacks;
    }
    return total;
  }
};

Result<std::vector<uint8_t>> read_whole(HvacClient& client,
                                        const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(int vfd, client.open(path));
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, client.read(vfd, buf.data(),
                                                buf.size()));
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  HVAC_RETURN_IF_ERROR(client.close(vfd));
  return data;
}

TEST(System, SingleNodeReadThroughCacheMatchesDisk) {
  Allocation alloc("basic", 1, 1);
  HvacClient client(alloc.client_options());

  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    const auto data = read_whole(client, alloc.abs(rel));
    ASSERT_TRUE(data.ok()) << data.error().to_string();
    EXPECT_EQ(data->size(), alloc.tree.sizes[i]);
    EXPECT_TRUE(workload::verify_contents(rel, *data)) << rel;
  }
  const auto m = alloc.total_metrics();
  EXPECT_EQ(m.misses, alloc.tree.relative_paths.size());
  EXPECT_EQ(m.hits, 0u);
  EXPECT_EQ(m.pfs_fallbacks, 0u);

  // Second pass: every re-open is answered by the client meta cache
  // (no open round trip at all) and the bytes still come off the
  // node-local copy.
  const uint64_t cache_bytes_before = alloc.total_metrics().bytes_from_cache;
  const uint64_t meta_hits_before = client.stats().meta_hits;
  for (const auto& rel : alloc.tree.relative_paths) {
    ASSERT_TRUE(read_whole(client, alloc.abs(rel)).ok());
  }
  EXPECT_GE(client.stats().meta_hits - meta_hits_before,
            alloc.tree.relative_paths.size());
  EXPECT_GT(alloc.total_metrics().bytes_from_cache, cache_bytes_before);
  EXPECT_EQ(alloc.total_metrics().pfs_fallbacks, 0u);
}

TEST(System, MultiNodeMultiInstancePlacementSpreads) {
  Allocation alloc("spread", 3, 2, /*files=*/60);
  HvacClient client(alloc.client_options());
  ASSERT_EQ(client.options().server_endpoints.size(), 6u);

  std::vector<int> per_server(6, 0);
  for (const auto& rel : alloc.tree.relative_paths) {
    ASSERT_TRUE(read_whole(client, alloc.abs(rel)).ok());
    ++per_server[client.home_of(alloc.abs(rel))];
  }
  // Every server got some share of 60 files.
  for (int count : per_server) EXPECT_GT(count, 0);
  // And the files landed in the matching instance's store.
  size_t cached_total = 0;
  for (const auto& node : alloc.nodes) {
    for (size_t i = 0; i < node->instance_count(); ++i) {
      cached_total += node->instance(i).cache().store().entry_count();
    }
  }
  EXPECT_EQ(cached_total, alloc.tree.relative_paths.size());
}

TEST(System, PreadAndLseekSemantics) {
  Allocation alloc("seek", 1, 1);
  HvacClient client(alloc.client_options());
  const std::string& rel = alloc.tree.relative_paths[0];
  const auto expected =
      workload::expected_contents(rel, alloc.tree.sizes[0]);

  auto vfd = client.open(alloc.abs(rel));
  ASSERT_TRUE(vfd.ok());

  // pread does not move the offset.
  std::vector<uint8_t> buf(16);
  ASSERT_TRUE(client.pread(*vfd, buf.data(), buf.size(), 100).ok());
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), expected.begin() + 100));

  // lseek + read.
  ASSERT_EQ(client.lseek(*vfd, 50, SEEK_SET).value(), 50);
  ASSERT_TRUE(client.read(*vfd, buf.data(), buf.size()).ok());
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), expected.begin() + 50));
  // SEEK_CUR from 66.
  EXPECT_EQ(client.lseek(*vfd, 10, SEEK_CUR).value(), 76);
  // SEEK_END.
  EXPECT_EQ(client.lseek(*vfd, 0, SEEK_END).value(),
            int64_t(alloc.tree.sizes[0]));
  EXPECT_FALSE(client.lseek(*vfd, -9999, SEEK_SET).ok());
  ASSERT_TRUE(client.close(*vfd).ok());
}

TEST(System, OpenOutsideDatasetRejected) {
  Allocation alloc("outside", 1, 1);
  HvacClient client(alloc.client_options());
  const auto vfd = client.open("/etc/hostname");
  ASSERT_FALSE(vfd.ok());
  EXPECT_EQ(vfd.error().code, ErrorCode::kInvalidArgument);
  EXPECT_FALSE(client.eligible("/etc/hostname"));
  EXPECT_TRUE(client.eligible(alloc.abs("x")));
}

TEST(System, MissingFileIsNotFound) {
  Allocation alloc("nf", 1, 1);
  HvacClient client(alloc.client_options());
  const auto vfd = client.open(alloc.abs("does/not/exist.bin"));
  ASSERT_FALSE(vfd.ok());
  EXPECT_EQ(vfd.error().code, ErrorCode::kNotFound);
}

TEST(System, StatSizeMatchesTree) {
  Allocation alloc("stat", 2, 1);
  HvacClient client(alloc.client_options());
  for (size_t i = 0; i < 5; ++i) {
    const auto size =
        client.stat_size(alloc.abs(alloc.tree.relative_paths[i]));
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, alloc.tree.sizes[i]);
  }
}

TEST(System, PrefetchWarmsCache) {
  Allocation alloc("prefetch", 2, 1);
  HvacClient client(alloc.client_options());
  for (const auto& rel : alloc.tree.relative_paths) {
    ASSERT_TRUE(client.prefetch(alloc.abs(rel)).ok());
  }
  const auto warm = alloc.total_metrics();
  EXPECT_EQ(warm.misses, alloc.tree.relative_paths.size());

  // All subsequent opens are hits.
  for (const auto& rel : alloc.tree.relative_paths) {
    ASSERT_TRUE(read_whole(client, alloc.abs(rel)).ok());
  }
  EXPECT_EQ(alloc.total_metrics().hits,
            alloc.tree.relative_paths.size());
}

TEST(System, DeadPrimaryFailsOverToPfsFallback) {
  Allocation alloc("failover", 2, 1);
  auto options = alloc.client_options();
  // Kill node 1's server after building the endpoint map.
  alloc.nodes[1]->stop();
  options.rpc.connect_timeout_ms = 300;
  options.rpc.recv_timeout_ms = 300;
  HvacClient client(options);

  // Every file must still be readable (fail-open), some via PFS.
  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    const auto data = read_whole(client, alloc.abs(rel));
    ASSERT_TRUE(data.ok()) << rel << ": " << data.error().to_string();
    EXPECT_TRUE(workload::verify_contents(rel, *data));
  }
  const auto stats = client.stats();
  EXPECT_GT(stats.fallback_opens, 0u);
  EXPECT_GT(stats.remote_opens, 0u);
  EXPECT_EQ(stats.opens, alloc.tree.relative_paths.size());
}

TEST(System, ReplicationSurvivesServerLoss) {
  Allocation alloc("replica", 3, 1, /*files=*/30);
  auto options = alloc.client_options();
  options.placement = core::PlacementPolicy::kRendezvous;
  options.replicas = 2;
  options.allow_pfs_fallback = false;  // force replica fail-over
  options.rpc.connect_timeout_ms = 300;
  options.rpc.recv_timeout_ms = 300;
  alloc.nodes[2]->stop();

  HvacClient client(options);
  for (const auto& rel : alloc.tree.relative_paths) {
    const auto data = read_whole(client, alloc.abs(rel));
    ASSERT_TRUE(data.ok()) << rel << ": " << data.error().to_string();
    EXPECT_TRUE(workload::verify_contents(rel, *data));
  }
  // Files homed on the dead server reached their second replica.
  EXPECT_GT(client.stats().failovers, 0u);
}

TEST(System, CapacityOverflowServedFromPfsPassthrough) {
  // Tiny caches: most files overflow and are served through the
  // server's PFS passthrough path — still correct bytes.
  Allocation alloc("overflow", 1, 1, /*files=*/10, /*mean=*/8192,
                   /*capacity=*/12 * 1024);
  HvacClient client(alloc.client_options());
  for (size_t i = 0; i < alloc.tree.relative_paths.size(); ++i) {
    const std::string& rel = alloc.tree.relative_paths[i];
    const auto data = read_whole(client, alloc.abs(rel));
    ASSERT_TRUE(data.ok());
    EXPECT_TRUE(workload::verify_contents(rel, *data));
  }
  const auto m = alloc.total_metrics();
  EXPECT_GT(m.pfs_fallbacks + m.evictions, 0u);
}

TEST(System, ConcurrentClientsSeeConsistentData) {
  Allocation alloc("conc", 2, 2, /*files=*/16, /*mean=*/16384);
  constexpr int kThreads = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&alloc, &ok] {
      HvacClient client(alloc.client_options());
      for (const auto& rel : alloc.tree.relative_paths) {
        const auto data = read_whole(client, alloc.abs(rel));
        if (data.ok() && workload::verify_contents(rel, *data)) ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * int(alloc.tree.relative_paths.size()));
  // Single-copy: each file fetched from the PFS exactly once.
  const auto m = alloc.total_metrics();
  EXPECT_EQ(m.misses, alloc.tree.relative_paths.size());
}

TEST(System, ServerStopPurgesCache) {
  Allocation alloc("purge", 1, 1);
  {
    HvacClient client(alloc.client_options());
    for (const auto& rel : alloc.tree.relative_paths) {
      ASSERT_TRUE(read_whole(client, alloc.abs(rel)).ok());
    }
  }
  const std::string store_root =
      alloc.cache_root + "/node0/instance_0";
  size_t before = 0;
  for (const auto& e : fs::directory_iterator(store_root)) {
    (void)e;
    ++before;
  }
  EXPECT_GT(before, 0u);
  alloc.nodes[0]->stop();
  size_t after = 0;
  for (const auto& e : fs::directory_iterator(store_root)) {
    (void)e;
    ++after;
  }
  EXPECT_EQ(after, 0u);  // cache lifetime == job lifetime
}

// ---- Fig 14 invariant: training through HVAC == training off PFS ----------

TEST(System, TrainingCurveIdenticalThroughHvac) {
  const std::string pfs_root = temp_dir("train_pfs");
  const std::string cache_root = temp_dir("train_cache");
  train::MixtureSpec data;
  data.train_samples = 160;
  data.test_samples = 80;
  ASSERT_TRUE(train::write_train_files(data, pfs_root).ok());

  NodeRuntimeOptions node_options;
  node_options.pfs_root = pfs_root;
  node_options.cache_root = cache_root;
  node_options.instances = 2;
  NodeRuntime node(node_options);
  ASSERT_TRUE(node.start().ok());

  train::LoopConfig loop;
  loop.data = data;
  loop.epochs = 3;
  loop.dataset_root = pfs_root;

  // Baseline: direct POSIX reads (the "GPFS" path).
  const auto direct = train::run_training_loop(
      loop, [](const std::string& path) {
        return storage::read_file(path);
      });
  ASSERT_TRUE(direct.ok());

  // Same loop, reads through HVAC.
  HvacClientOptions client_options;
  client_options.dataset_dir = pfs_root;
  client_options.server_endpoints = node.endpoints();
  HvacClient client(client_options);
  const auto cached = train::run_training_loop(
      loop, [&client](const std::string& path) {
        return read_whole(client, path);
      });
  ASSERT_TRUE(cached.ok());

  // Bit-identical accuracy trajectories: HVAC did not perturb the
  // shuffled sequence or the bytes.
  EXPECT_TRUE(direct->identical_to(*cached));
  EXPECT_GT(cached->final_top1, 0.55);  // the model actually learned
  EXPECT_GT(cached->final_top5, 0.9);
  // And the cache really served the later epochs: bytes came off the
  // node-local copy, and the meta cache short-circuited the re-opens.
  EXPECT_GT(node.aggregated_metrics().bytes_from_cache, 0u);
  EXPECT_GT(client.stats().meta_hits, 0u);
}

// Epoch shuffling itself is backend-independent and epoch-dependent.
TEST(System, ShuffleDeterminismAcrossEpochs) {
  workload::EpochShuffler shuffler(100, 42);
  EXPECT_EQ(shuffler.shuffled(3), shuffler.shuffled(3));
  EXPECT_NE(shuffler.shuffled(3), shuffler.shuffled(4));

  workload::DistributedSampler s0(0, 4), s1(1, 4);
  const auto order = shuffler.shuffled(0);
  const auto p0 = s0.partition(order);
  const auto p1 = s1.partition(order);
  EXPECT_EQ(p0.size(), 25u);
  EXPECT_NE(p0, p1);
}

}  // namespace
}  // namespace hvac
