// Stress tests: the failure modes that only appear under combined
// load — many clients, eviction pressure, segmentation and fail-over
// all at once. These run with small datasets so they stay fast, but
// every interleaving hazard (fd churn, in-flight dedup, store
// accounting) is exercised for real.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "client/hvac_client.h"
#include "common/rng.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"
#include "workload/shuffler.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_stress_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Stress, ManyClientsEvictionAndSegmentsTogether) {
  const std::string pfs_root = temp_dir("mix_pfs");
  // Mixed sizes: some files segment (8 KB segments), some don't.
  const auto spec = workload::synthetic_small(24, 10 * 1024, 0.9);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  // Tight per-instance capacity forces constant eviction churn.
  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.segment_bytes = 8 * 1024;
  for (int n = 0; n < 2; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = temp_dir("mix_cache" + std::to_string(n));
    o.instances = 2;
    o.cache_capacity_bytes_per_instance = tree->total_bytes / 6;
    o.data_mover_threads = 2;
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    ASSERT_TRUE(nodes.back()->start().ok());
    for (const auto& e : nodes.back()->endpoints()) {
      copts.server_endpoints.push_back(e);
    }
  }

  constexpr int kThreads = 6;
  constexpr int kEpochs = 3;
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      client::HvacClient client(copts);
      workload::EpochShuffler shuffler(tree->relative_paths.size(),
                                       100 + t);
      std::vector<uint8_t> buf;
      for (int epoch = 0; epoch < kEpochs; ++epoch) {
        for (uint64_t idx : shuffler.shuffled(epoch)) {
          const std::string& rel = tree->relative_paths[idx];
          auto vfd = client.open(pfs_root + "/" + rel);
          if (!vfd.ok()) {
            ++failed;
            continue;
          }
          buf.assign(tree->sizes[idx], 0);
          auto n = client.pread(*vfd, buf.data(), buf.size(), 0);
          const bool good = n.ok() && *n == tree->sizes[idx] &&
                            workload::verify_contents(rel, buf);
          (void)client.close(*vfd);
          good ? ++ok : ++failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(ok.load(),
            kThreads * kEpochs * int(tree->relative_paths.size()));
  // Eviction actually happened (the whole point of the tight caches)
  // and the stores respected their budgets throughout.
  core::MetricsSnapshot total;
  for (auto& node : nodes) {
    for (size_t i = 0; i < node->instance_count(); ++i) {
      auto& store = node->instance(i).cache().store();
      EXPECT_LE(store.bytes_used(), store.capacity_bytes());
      const auto m = node->instance(i).metrics();
      total.evictions += m.evictions;
      total.pfs_fallbacks += m.pfs_fallbacks;
      total.hits += m.hits;
    }
  }
  EXPECT_GT(total.evictions + total.pfs_fallbacks, 0u);
  EXPECT_GT(total.hits, 0u);
  for (auto& node : nodes) node->stop();
}

TEST(Stress, ServerDiesWhileClientsAreReading) {
  const std::string pfs_root = temp_dir("die_pfs");
  const auto spec = workload::synthetic_small(30, 6 * 1024, 0.3);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.rpc.connect_timeout_ms = 300;
  copts.rpc.recv_timeout_ms = 500;
  for (int n = 0; n < 3; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = temp_dir("die_cache" + std::to_string(n));
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    ASSERT_TRUE(nodes.back()->start().ok());
    copts.server_endpoints.push_back(nodes.back()->endpoints()[0]);
  }

  std::atomic<int> failed{0};
  std::atomic<bool> killed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      client::HvacClient client(copts);
      SplitMix64 rng(t + 1);
      std::vector<uint8_t> buf;
      for (int round = 0; round < 60; ++round) {
        const auto idx = rng.next_below(tree->relative_paths.size());
        const std::string& rel = tree->relative_paths[idx];
        auto vfd = client.open(pfs_root + "/" + rel);
        if (!vfd.ok()) {
          ++failed;
          continue;
        }
        buf.assign(tree->sizes[idx], 0);
        auto n = client.pread(*vfd, buf.data(), buf.size(), 0);
        if (!n.ok() || !workload::verify_contents(rel, buf)) ++failed;
        (void)client.close(*vfd);
        if (round == 20 && t == 0 && !killed.exchange(true)) {
          nodes[1]->stop();  // yank a server out mid-traffic
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Fail-open: no read may fail outright; the worst case is a slower
  // PFS-fallback read (the paper's "cache must not kill the job").
  EXPECT_EQ(failed.load(), 0);
  nodes[0]->stop();
  nodes[2]->stop();
}

TEST(Stress, PrefetchRacesRegularReads) {
  const std::string pfs_root = temp_dir("race_pfs");
  const auto spec = workload::synthetic_small(40, 3 * 1024, 0.2);
  auto tree = workload::generate_tree(pfs_root, spec);
  ASSERT_TRUE(tree.ok());

  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = temp_dir("race_cache");
  o.instances = 2;
  server::NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();

  std::vector<std::string> paths;
  for (const auto& rel : tree->relative_paths) {
    paths.push_back(pfs_root + "/" + rel);
  }

  std::atomic<int> failed{0};
  std::thread warmer([&] {
    client::HvacClient client(copts);
    const auto warmed = client.prefetch_many(paths);
    if (!warmed.ok()) ++failed;
  });
  std::thread reader([&] {
    client::HvacClient client(copts);
    std::vector<uint8_t> buf;
    for (size_t i = 0; i < paths.size(); ++i) {
      auto vfd = client.open(paths[i]);
      if (!vfd.ok()) {
        ++failed;
        continue;
      }
      buf.assign(tree->sizes[i], 0);
      auto n = client.pread(*vfd, buf.data(), buf.size(), 0);
      if (!n.ok() ||
          !workload::verify_contents(tree->relative_paths[i], buf)) {
        ++failed;
      }
      (void)client.close(*vfd);
    }
  });
  warmer.join();
  reader.join();
  EXPECT_EQ(failed.load(), 0);
  // The single-copy guarantee held under the race: one PFS fetch per
  // file even with prefetch and demand reads contending.
  EXPECT_EQ(node.aggregated_metrics().misses, paths.size());
  node.stop();
}

}  // namespace
}  // namespace hvac
