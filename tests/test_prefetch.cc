// Tests for the clairvoyant prefetch pipeline: the adaptive read-ahead
// policy's synthetic-trace behaviour, data-mover dedup coalescing
// under fault injection (N waiters share exactly one fetch and one
// error), token-bucket pacing determinism, late / hit-after-prefetch
// accounting, mover-backpressure shed handling, and the N-client
// warm-up single-PFS-fetch guarantee.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "client/hvac_client.h"
#include "client/prefetch_scheduler.h"
#include "client/readahead_policy.h"
#include "common/fault_injection.h"
#include "core/cache_manager.h"
#include "core/data_mover.h"
#include "core/eviction.h"
#include "server/hvac_server.h"
#include "server/node_runtime.h"
#include "storage/pfs_backend.h"
#include "storage/posix_file.h"
#include "storage/throttle.h"
#include "workload/dataset_spec.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;
using client::PrefetchScheduler;
using client::PrefetchSchedulerOptions;
using client::ReadAheadPolicy;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_prefetch_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Result<std::vector<uint8_t>> read_whole(HvacClient& client,
                                        const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(int vfd, client.open(path));
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, client.read(vfd, buf.data(),
                                                buf.size()));
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  HVAC_RETURN_IF_ERROR(client.close(vfd));
  return data;
}

// ---- adaptive read-ahead policy (pure state machine) ---------------------

TEST(ReadAheadPolicy, FastGapsGrowDepthToMax) {
  ReadAheadPolicy p;
  ASSERT_EQ(p.depth, 2u);
  // The app consumes chunks every 0.1 ms — far faster than a fetch
  // round trip — so the window must deepen one step per hit.
  for (int i = 0; i < 32; ++i) p.on_sequential(100'000);
  EXPECT_EQ(p.depth, p.max_depth);
  EXPECT_LT(p.avg_gap_ns, p.slow_gap_ns);
}

TEST(ReadAheadPolicy, SlowGapsHoldDepth) {
  ReadAheadPolicy p;
  // Compute-bound: 10 ms between reads. The current window already
  // hides the fetch, so depth must not grow.
  for (int i = 0; i < 32; ++i) p.on_sequential(10'000'000);
  EXPECT_EQ(p.depth, 2u);
  EXPECT_GE(p.avg_gap_ns, p.slow_gap_ns);
}

TEST(ReadAheadPolicy, MissHalvesAndFloorsAtMin) {
  ReadAheadPolicy p;
  for (int i = 0; i < 32; ++i) p.on_sequential(100'000);
  ASSERT_EQ(p.depth, p.max_depth);
  p.on_miss();
  EXPECT_EQ(p.depth, p.max_depth / 2);
  for (int i = 0; i < 10; ++i) p.on_miss();
  EXPECT_EQ(p.depth, p.min_depth);
}

TEST(ReadAheadPolicy, SyntheticTraceSeekThenScanRecovers) {
  ReadAheadPolicy p;
  // Scan phase: grow. Seek breaks the pattern: halve. Resumed scan
  // with fast gaps re-grows to max — the EWMA keeps the gap estimate
  // below the slow threshold throughout.
  for (int i = 0; i < 10; ++i) p.on_sequential(200'000);
  const uint32_t grown = p.depth;
  EXPECT_GT(grown, 2u);
  p.on_miss();
  EXPECT_EQ(p.depth, grown / 2);
  for (int i = 0; i < 32; ++i) p.on_sequential(200'000);
  EXPECT_EQ(p.depth, p.max_depth);
}

// ---- data-mover dedup under fault injection ------------------------------

struct MoverFixture {
  std::string pfs_root;
  std::string cache_root;
  std::unique_ptr<storage::PfsBackend> pfs;
  std::unique_ptr<core::CacheManager> cache;

  explicit MoverFixture(const std::string& name) {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    pfs = std::make_unique<storage::PfsBackend>(pfs_root);
    cache = std::make_unique<core::CacheManager>(
        pfs.get(), std::make_unique<storage::LocalStore>(cache_root, 0),
        core::make_eviction_policy("random"));
  }

  void put_pfs_file(const std::string& rel, size_t size, uint8_t fill) {
    std::vector<uint8_t> data(size, fill);
    ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, data.data(),
                                    data.size())
                    .ok());
  }
};

class DataMoverDedup : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

TEST_F(DataMoverDedup, CoalescedSubmitsShareOneFetch) {
  MoverFixture fx("dedup_ok");
  fx.put_pfs_file("a.bin", 4096, 0x5a);
  // Hold the first (and only) PFS open long enough that every later
  // submit provably lands while the fetch is in flight.
  ASSERT_TRUE(fault::configure("pfs_read:delay_ms=100:count=1").ok());

  core::DataMover mover(fx.cache.get(), /*movers=*/2);
  constexpr int kWaiters = 8;
  std::vector<std::shared_future<Result<bool>>> futs;
  for (int i = 0; i < kWaiters; ++i) futs.push_back(mover.submit("a.bin"));
  for (auto& f : futs) {
    const Result<bool> r = f.get();
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_TRUE(*r);
  }
  EXPECT_EQ(mover.dedup_coalesced(), static_cast<uint64_t>(kWaiters - 1));
  // One PFS copy served all eight waiters.
  EXPECT_EQ(fx.pfs->bytes_read(), 4096u);
  EXPECT_EQ(fx.cache->metrics().misses, 1u);
}

TEST_F(DataMoverDedup, CoalescedWaitersSeeTheErrorExactlyOnce) {
  MoverFixture fx("dedup_err");
  fx.put_pfs_file("a.bin", 4096, 0x5a);
  // The delay pins the fetch in flight while the waiters coalesce;
  // the error rule fails it. Every shared future must observe the
  // SAME single injected error — not one error per waiter.
  ASSERT_TRUE(
      fault::configure("pfs_read:delay_ms=100:count=1;pfs_read:error=io")
          .ok());

  core::DataMover mover(fx.cache.get(), /*movers=*/2);
  constexpr int kWaiters = 8;
  std::vector<std::shared_future<Result<bool>>> futs;
  for (int i = 0; i < kWaiters; ++i) futs.push_back(mover.submit("a.bin"));
  for (auto& f : futs) {
    const Result<bool> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kIoError);
  }
  EXPECT_EQ(mover.dedup_coalesced(), static_cast<uint64_t>(kWaiters - 1));
  // The single coalesced fetch hit the injection exactly once, and no
  // PFS payload bytes moved.
  EXPECT_EQ(fault::stats(fault::Site::kPfsRead).errors, 1u);
  EXPECT_EQ(fx.pfs->bytes_read(), 0u);

  // The failure is not sticky: once the fault clears, a fresh submit
  // (the in-flight entry was retired with the error) succeeds.
  fault::reset();
  const Result<bool> retry = mover.fetch("a.bin");
  ASSERT_TRUE(retry.ok()) << retry.error().message;
  EXPECT_TRUE(*retry);
  EXPECT_EQ(fx.pfs->bytes_read(), 4096u);
}

TEST_F(DataMoverDedup, StoreReadFaultOnWarmFileFailsOpenToPfs) {
  MoverFixture fx("dedup_store");
  fx.put_pfs_file("a.bin", 4096, 0x5a);
  core::DataMover mover(fx.cache.get(), /*movers=*/1);
  const Result<bool> warm = mover.fetch("a.bin");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(*warm);

  // The cached copy turns unreadable (NVMe EIO). Concurrent coalesced
  // warm-up answers must not wedge, and demand reads still see data
  // via the PFS path once the fault clears.
  ASSERT_TRUE(fault::configure("store_read:error=io").ok());
  std::vector<std::shared_future<Result<bool>>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(mover.submit("a.bin"));
  for (auto& f : futs) {
    const Result<bool> r = f.get();  // already cached: stat-only path
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  fault::reset();
  const auto data = fx.cache->read_through("a.bin");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data->size(), 4096u);
}

// ---- token-bucket pacing -------------------------------------------------

TEST(PrefetchPacing, TokenBucketWaitIsDeterministic) {
  // 10 kB/s with a 4 kB burst: the burst is free, the next 4 kB must
  // wait ~0.4 s. would_wait_seconds is the pure (non-blocking) probe
  // the scheduler uses for accounting.
  storage::TokenBucket bucket(10'000.0, 4'000.0);
  EXPECT_DOUBLE_EQ(bucket.would_wait_seconds(4'000), 0.0);
  bucket.acquire(4'000);  // drains the burst without blocking
  const double wait = bucket.would_wait_seconds(4'000);
  EXPECT_GE(wait, 0.3);
  EXPECT_LE(wait, 0.45);
}

// ---- scheduler end-to-end ------------------------------------------------

// One compute node (two server instances) over a generated dataset;
// `metadata_latency_us` models a congested PFS so fetches take real
// time and the prefetch/access race has a deterministic winner.
struct PrefetchCluster {
  std::string pfs_root;
  std::string cache_root;
  workload::GeneratedTree tree;
  std::unique_ptr<server::NodeRuntime> node;
  std::vector<std::string> abs_paths;

  PrefetchCluster(const std::string& name, uint64_t files,
                  uint64_t mean_bytes, uint32_t metadata_latency_us = 0) {
    pfs_root = temp_dir(name + "_pfs");
    cache_root = temp_dir(name + "_cache");
    auto generated = workload::generate_tree(
        pfs_root, workload::synthetic_small(files, mean_bytes, 0.0));
    EXPECT_TRUE(generated.ok());
    tree = std::move(generated).value();

    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.pfs_options.metadata_latency_us = metadata_latency_us;
    o.cache_root = cache_root;
    o.instances = 2;
    o.data_mover_threads = 2;
    node = std::make_unique<server::NodeRuntime>(o);
    EXPECT_TRUE(node->start().ok());
    for (const auto& rel : tree.relative_paths) {
      abs_paths.push_back(pfs_root + "/" + rel);
    }
  }

  ~PrefetchCluster() {
    if (node) node->stop();
  }

  HvacClientOptions client_options() const {
    HvacClientOptions o;
    o.dataset_dir = pfs_root;
    o.server_endpoints = node->endpoints();
    // These tests assert exact PFS byte / miss counts attributable to
    // the scheduler; keep the per-fd read-ahead out of the picture.
    o.readahead_chunks = 0;
    return o;
  }
};

TEST(PrefetchSchedulerE2E, PlanWarmsEverySampleBeforeAccess) {
  PrefetchCluster cx("warm", 24, 4096);
  HvacClientOptions copts = cx.client_options();
  copts.prefetch_depth = 256;  // window covers the whole epoch
  HvacClient client(copts);

  client.set_access_plan(cx.abs_paths);
  PrefetchScheduler* pf = client.prefetch_scheduler();
  ASSERT_NE(pf, nullptr);
  pf->wait_caught_up();

  PrefetchScheduler::Stats s = pf->stats();
  EXPECT_EQ(s.planned, 24u);
  EXPECT_EQ(s.issued, 24u);
  EXPECT_EQ(s.completed, 24u);
  EXPECT_EQ(s.shed, 0u);
  // Warm-up copied every sample exactly once from the PFS.
  EXPECT_EQ(cx.node->pfs().bytes_read(), cx.tree.total_bytes);
  EXPECT_EQ(cx.node->aggregated_metrics().misses, 24u);

  // Now the epoch runs: every access in plan order is a
  // hit-after-prefetch, and the PFS sees no further reads.
  for (const auto& path : cx.abs_paths) {
    const auto data = read_whole(client, path);
    ASSERT_TRUE(data.ok()) << data.error().message;
  }
  s = pf->stats();
  EXPECT_EQ(s.hit_after_prefetch, 24u);
  EXPECT_EQ(s.late, 0u);
  EXPECT_EQ(s.cursor, 24u);
  EXPECT_EQ(cx.node->pfs().bytes_read(), cx.tree.total_bytes);
}

TEST(PrefetchSchedulerE2E, PacingMetersIssueRateDeterministically) {
  PrefetchCluster cx("paced", 12, 1024);
  HvacClient client(cx.client_options());

  // Standalone scheduler so the test controls the pacing estimate:
  // 12 samples at 1000 "bytes" each against a 10 kB/s bucket with a
  // 4 kB burst (batch_size * est). Batch 1 rides the burst; batches 2
  // and 3 each stall ~0.4 s.
  PrefetchSchedulerOptions po;
  po.depth = 64;
  po.batch_size = 4;
  po.bw_mbps = 0.01;  // 10 kB/s
  po.est_sample_bytes = 1000;
  PrefetchScheduler sched(&client, po);

  const auto t0 = std::chrono::steady_clock::now();
  sched.set_plan(std::vector<std::string>(cx.tree.relative_paths));
  sched.wait_caught_up();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sched.stop();

  const PrefetchScheduler::Stats s = sched.stats();
  EXPECT_EQ(s.planned, 12u);
  EXPECT_EQ(s.completed, 12u);
  // Two post-burst batches, ~0.4 s each, recorded in the paced-delay
  // accounting AND observable as wall-clock pacing.
  EXPECT_GE(s.paced_delay_ns, 500'000'000u);
  EXPECT_LE(s.paced_delay_ns, 3'000'000'000u);
  EXPECT_GE(elapsed, 0.5);
}

TEST(PrefetchSchedulerE2E, LateAndHitAfterPartitionPlannedAccesses) {
  // 20 ms PFS metadata latency: the first accesses run ahead of their
  // prefetches (late), the tail is warmed in time (hit-after). Every
  // planned access lands in exactly one bucket.
  PrefetchCluster cx("late", 24, 4096, /*metadata_latency_us=*/20'000);
  HvacClientOptions copts = cx.client_options();
  copts.prefetch_depth = 8;
  HvacClient client(copts);

  client.set_access_plan(cx.abs_paths);
  for (const auto& path : cx.abs_paths) {  // no wait: access immediately
    const auto data = read_whole(client, path);
    ASSERT_TRUE(data.ok()) << data.error().message;
  }
  const PrefetchScheduler::Stats s = client.prefetch_scheduler()->stats();
  EXPECT_EQ(s.cursor, 24u);
  EXPECT_EQ(s.late + s.hit_after_prefetch, 24u);
  // The very first access fires microseconds after set_access_plan
  // while the first fetch still owes >=20 ms of PFS latency.
  EXPECT_GE(s.late, 1u);
}

TEST(PrefetchSchedulerE2E, SetPlanReplacesEpochAndKeepsAccounting) {
  PrefetchCluster cx("epoch", 16, 2048);
  HvacClientOptions copts = cx.client_options();
  copts.prefetch_depth = 256;
  HvacClient client(copts);

  // Epoch 0's plan is replaced immediately — in-flight batches for it
  // must be discarded, not applied to epoch 1's entries.
  client.set_access_plan(cx.abs_paths);
  std::vector<std::string> reversed(cx.abs_paths.rbegin(),
                                    cx.abs_paths.rend());
  client.set_access_plan(reversed);
  PrefetchScheduler* pf = client.prefetch_scheduler();
  pf->wait_caught_up();
  EXPECT_EQ(pf->stats().planned, 32u);

  for (const auto& path : reversed) {
    const auto data = read_whole(client, path);
    ASSERT_TRUE(data.ok()) << data.error().message;
  }
  const PrefetchScheduler::Stats s = pf->stats();
  // Accesses against the live plan partition cleanly even though the
  // previous epoch was abandoned mid-flight.
  EXPECT_EQ(s.cursor, 16u);
  EXPECT_EQ(s.late + s.hit_after_prefetch, 16u);
}

TEST(PrefetchSchedulerE2E, ConcurrentClientsCoalesceToOnePfsFetchPerSample) {
  // The ISSUE's acceptance criterion: N clients warming the same plan
  // concurrently cost ~one PFS fetch per sample, not N. The 20 ms
  // fetch latency guarantees the clients' batches overlap in flight.
  PrefetchCluster cx("nclient", 16, 4096, /*metadata_latency_us=*/20'000);
  constexpr int kClients = 3;

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      HvacClientOptions copts = cx.client_options();
      copts.prefetch_depth = 256;
      HvacClient client(copts);
      client.set_access_plan(cx.abs_paths);
      client.prefetch_scheduler()->wait_caught_up();
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one PFS copy per sample despite 3x the prefetch traffic.
  EXPECT_EQ(cx.node->pfs().bytes_read(), cx.tree.total_bytes);
  EXPECT_EQ(cx.node->aggregated_metrics().misses, 16u);
  // And the savings are attributed: the movers coalesced duplicate
  // fetches (surfaced per node via `hvacctl prefetch`).
  EXPECT_GE(cx.node->aggregated_frame().prefetch.deduped, 1u);
}

TEST(PrefetchSchedulerE2E, MoverBackpressureShedsPerPathAndRepaces) {
  // A deliberately starved instance: one mover, a 2-deep queue, 10 ms
  // per fetch. A 24-path batch must come back with per-path shed
  // statuses — NOT a transport error, NOT 24 queued fetches.
  const std::string pfs_root = temp_dir("shed_pfs");
  const std::string cache_root = temp_dir("shed_cache");
  auto generated = workload::generate_tree(
      pfs_root, workload::synthetic_small(24, 2048, 0.0));
  ASSERT_TRUE(generated.ok());

  storage::PfsOptions po;
  po.metadata_latency_us = 10'000;
  storage::PfsBackend pfs(pfs_root, po);
  server::HvacServerOptions so;
  so.cache_dir = cache_root;
  so.data_mover_threads = 1;
  so.mover_queue_capacity = 2;
  server::HvacServer server(&pfs, so);
  ASSERT_TRUE(server.start().ok());

  HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = {server.address()};
  copts.readahead_chunks = 0;
  HvacClient client(copts);

  const auto statuses =
      client.prefetch_batch_status(generated->relative_paths);
  ASSERT_TRUE(statuses.ok()) << statuses.error().message;
  ASSERT_EQ(statuses->size(), 24u);
  int shed = 0;
  int cached = 0;
  for (const uint8_t st : *statuses) {
    if (st == proto::kPrefetchShed) ++shed;
    if (st == proto::kPrefetchCached) ++cached;
  }
  EXPECT_GE(shed, 1);   // the queue bound held
  EXPECT_GE(cached, 1); // the accepted head still warmed

  // The scheduler turns those sheds into bounded re-paced retries:
  // wait_caught_up() terminates (no livelock on a saturated mover)
  // and the shed counter proves backpressure was exercised.
  std::vector<std::string> abs_paths;
  for (const auto& rel : generated->relative_paths) {
    abs_paths.push_back(pfs_root + "/" + rel);
  }
  HvacClientOptions copts2 = copts;
  copts2.prefetch_depth = 256;
  HvacClient client2(copts2);
  client2.set_access_plan(abs_paths);
  PrefetchScheduler* pf = client2.prefetch_scheduler();
  pf->wait_caught_up();
  const PrefetchScheduler::Stats s = pf->stats();
  EXPECT_EQ(s.planned, 24u);
  EXPECT_GE(s.shed, 1u);
  EXPECT_GE(s.completed, 1u);

  // Fail-open: shed-exhausted samples still read correctly on demand.
  const auto data = read_whole(client2, abs_paths[0]);
  ASSERT_TRUE(data.ok()) << data.error().message;
  server.stop();
}

}  // namespace
}  // namespace hvac
