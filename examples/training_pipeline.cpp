// training_pipeline — a realistic DL data pipeline over the
// functional HVAC system: shuffled epochs, distributed-sampler
// partitions, minibatch reads, per-epoch timing. Compares direct PFS
// reads (GPFS-like throttled directory) against reads through HVAC —
// the single-machine analogue of the paper's Fig 8/11 runs.
//
//   $ ./examples/training_pipeline [files] [mean_bytes] [epochs]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "storage/pfs_backend.h"
#include "workload/file_tree.h"
#include "workload/shuffler.h"

using namespace hvac;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using ReadFn = std::function<Result<uint64_t>(const std::string& abs_path)>;

// One training run: per epoch, shuffle + read every file in batches.
std::vector<double> run_epochs(const workload::GeneratedTree& tree,
                               uint32_t epochs, const ReadFn& read_file) {
  std::vector<double> epoch_seconds;
  workload::EpochShuffler shuffler(tree.relative_paths.size(), 0x5eed);
  for (uint32_t e = 0; e < epochs; ++e) {
    const double t0 = now_seconds();
    for (uint64_t idx : shuffler.shuffled(e)) {
      const auto n =
          read_file(tree.root + "/" + tree.relative_paths[idx]);
      if (!n.ok()) {
        std::fprintf(stderr, "read failed: %s\n",
                     n.error().to_string().c_str());
        std::exit(1);
      }
    }
    epoch_seconds.push_back(now_seconds() - t0);
  }
  return epoch_seconds;
}

void print_row(const char* label, const std::vector<double>& epochs) {
  double total = 0;
  double best_random = 1e30;
  for (size_t i = 0; i < epochs.size(); ++i) {
    total += epochs[i];
    if (i > 0) best_random = std::min(best_random, epochs[i]);
  }
  std::printf("%-22s epoch1=%7.3fs  R_epoch=%7.3fs  avg=%7.3fs  "
              "total=%7.3fs\n",
              label, epochs.front(), best_random,
              total / epochs.size(), total);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t files = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;
  const uint64_t mean = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 96 * 1024;
  const uint32_t epochs = argc > 3
                              ? uint32_t(std::strtoul(argv[3], nullptr, 10))
                              : 4;

  const std::string pfs_root = "/tmp/hvac_pipeline/pfs";
  auto tree = workload::generate_tree(
      pfs_root, workload::synthetic_small(files, mean));
  if (!tree.ok()) return 1;
  std::printf("dataset: %zu files, %.1f MiB, %u epochs\n\n",
              tree->relative_paths.size(), tree->total_bytes / 1048576.0,
              epochs);

  // --- baseline: every epoch reads through the congested "GPFS". ----
  storage::PfsBackend gpfs(pfs_root, storage::gpfs_like_options());
  const auto gpfs_epochs = run_epochs(
      *tree, epochs, [&gpfs, &pfs_root](const std::string& abs) {
        auto data = gpfs.read_all(abs.substr(pfs_root.size() + 1));
        if (!data.ok()) return Result<uint64_t>(data.error());
        return Result<uint64_t>(uint64_t(data->size()));
      });
  print_row("GPFS (throttled dir)", gpfs_epochs);

  // --- HVAC: same GPFS behind 2 nodes x 2 instances of cache. --------
  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  for (int n = 0; n < 2; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = "/tmp/hvac_pipeline/cache/node" + std::to_string(n);
    o.instances = 2;
    o.pfs_options = storage::gpfs_like_options();
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    if (!nodes.back()->start().ok()) return 1;
    for (const auto& e : nodes.back()->endpoints()) {
      copts.server_endpoints.push_back(e);
    }
  }
  client::HvacClient client(copts);
  std::vector<uint8_t> buf(1 << 16);
  const auto hvac_epochs = run_epochs(
      *tree, epochs, [&client, &buf](const std::string& abs) {
        auto fd = client.open(abs);
        if (!fd.ok()) return Result<uint64_t>(fd.error());
        uint64_t total = 0;
        for (;;) {
          auto n = client.read(*fd, buf.data(), buf.size());
          if (!n.ok()) return Result<uint64_t>(n.error());
          if (*n == 0) break;
          total += *n;
        }
        if (auto s = client.close(*fd); !s.ok()) {
          return Result<uint64_t>(s.error());
        }
        return Result<uint64_t>(total);
      });
  print_row("HVAC(2x1)", hvac_epochs);

  std::printf("\nHVAC cached-epoch speedup over GPFS: %.1fx\n",
              gpfs_epochs.back() / hvac_epochs.back());
  for (auto& node : nodes) {
    std::printf("%s\n", node->aggregated_metrics().to_string().c_str());
    node->stop();
  }
  return 0;
}
