// Quickstart: stand up an in-process HVAC allocation (2 nodes x 2
// server instances over a GPFS-like throttled directory), read a
// dataset through the cache twice, and print what happened.
//
//   $ ./examples/quickstart
//
// This is the whole public API surface a user needs: NodeRuntime to
// host servers, HvacClient to read.
#include <cstdio>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

using namespace hvac;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<uint64_t> read_all_files(client::HvacClient& client,
                                const workload::GeneratedTree& tree) {
  uint64_t total = 0;
  std::vector<uint8_t> buf(1 << 16);
  for (const auto& rel : tree.relative_paths) {
    HVAC_ASSIGN_OR_RETURN(int fd, client.open(tree.root + "/" + rel));
    for (;;) {
      HVAC_ASSIGN_OR_RETURN(size_t n,
                            client.read(fd, buf.data(), buf.size()));
      if (n == 0) break;
      total += n;
    }
    HVAC_RETURN_IF_ERROR(client.close(fd));
  }
  return total;
}

}  // namespace

int main() {
  // 1. A small dataset on the "PFS" (a real directory).
  const std::string pfs_root = "/tmp/hvac_quickstart/pfs";
  const std::string cache_root = "/tmp/hvac_quickstart/cache";
  const auto spec = workload::synthetic_small(/*files=*/64,
                                              /*mean_bytes=*/64 * 1024);
  auto tree = workload::generate_tree(pfs_root, spec);
  if (!tree.ok()) {
    std::fprintf(stderr, "generate: %s\n", tree.error().to_string().c_str());
    return 1;
  }
  std::printf("dataset: %zu files, %.1f MiB under %s\n",
              tree->relative_paths.size(), tree->total_bytes / 1048576.0,
              pfs_root.c_str());

  // 2. An allocation: 2 "compute nodes", each with 2 HVAC server
  //    instances -- HVAC(2x1) in the paper's notation. The PFS is
  //    throttled to feel like a busy GPFS.
  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  std::vector<std::string> endpoints;
  for (int n = 0; n < 2; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = cache_root + "/node" + std::to_string(n);
    o.instances = 2;
    o.pfs_options = storage::gpfs_like_options();
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    if (Status s = nodes.back()->start(); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
      return 1;
    }
    for (const auto& e : nodes.back()->endpoints()) endpoints.push_back(e);
  }
  std::printf("allocation: 2 nodes x 2 instances -> %zu servers\n",
              endpoints.size());

  // 3. A client; its placement function routes each file to its home
  //    server with no metadata service involved.
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = endpoints;
  client::HvacClient client(copts);

  // 4. Epoch 1: every read is a miss -> each file is copied from the
  //    PFS to its home server's node-local store once.
  double t0 = now_seconds();
  auto bytes = read_all_files(client, *tree);
  if (!bytes.ok()) {
    std::fprintf(stderr, "read: %s\n", bytes.error().to_string().c_str());
    return 1;
  }
  const double cold = now_seconds() - t0;

  // 5. Epoch 2: all hits, served from the aggregated node-local cache.
  t0 = now_seconds();
  bytes = read_all_files(client, *tree);
  const double warm = now_seconds() - t0;

  std::printf("\nepoch 1 (cold, via PFS):   %7.3f s\n", cold);
  std::printf("epoch 2 (warm, via HVAC):  %7.3f s   (%.1fx faster)\n",
              warm, cold / warm);
  for (size_t n = 0; n < nodes.size(); ++n) {
    const auto m = nodes[n]->aggregated_metrics();
    std::printf("node %zu: %s\n", n, m.to_string().c_str());
  }
  for (auto& node : nodes) node->stop();
  return 0;
}
