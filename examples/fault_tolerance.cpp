// fault_tolerance — demonstrates the paper's §III-H resilience story
// on the functional system: an allocation loses a node mid-run and
// the training job keeps reading, first via replica fail-over
// (rendezvous placement, r=2), then — with replication disabled — via
// direct-PFS fail-open.
//
//   $ ./examples/fault_tolerance
#include <cstdio>

#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

using namespace hvac;

namespace {

int read_all(client::HvacClient& client, const workload::GeneratedTree& tree,
             int* bad) {
  int good = 0;
  std::vector<uint8_t> buf(1 << 16);
  for (const auto& rel : tree.relative_paths) {
    auto fd = client.open(tree.root + "/" + rel);
    if (!fd.ok()) {
      ++*bad;
      continue;
    }
    std::vector<uint8_t> data;
    for (;;) {
      auto n = client.read(*fd, buf.data(), buf.size());
      if (!n.ok() || *n == 0) break;
      data.insert(data.end(), buf.begin(), buf.begin() + *n);
    }
    (void)client.close(*fd);
    if (workload::verify_contents(rel, data)) {
      ++good;
    } else {
      ++*bad;
    }
  }
  return good;
}

}  // namespace

int main() {
  const std::string pfs_root = "/tmp/hvac_fault/pfs";
  auto tree = workload::generate_tree(
      pfs_root, workload::synthetic_small(60, 16 * 1024));
  if (!tree.ok()) return 1;

  std::vector<std::unique_ptr<server::NodeRuntime>> nodes;
  std::vector<std::string> endpoints;
  for (int n = 0; n < 3; ++n) {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = "/tmp/hvac_fault/cache/node" + std::to_string(n);
    nodes.push_back(std::make_unique<server::NodeRuntime>(o));
    if (!nodes.back()->start().ok()) return 1;
    endpoints.push_back(nodes.back()->endpoints()[0]);
  }

  // Replicated client: rendezvous placement, two homes per file.
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = endpoints;
  copts.placement = core::PlacementPolicy::kRendezvous;
  copts.replicas = 2;
  copts.rpc.connect_timeout_ms = 300;
  copts.rpc.recv_timeout_ms = 500;
  client::HvacClient client(copts);

  int bad = 0;
  std::printf("epoch 1 (3 healthy nodes):     %d/%zu files ok\n",
              read_all(client, *tree, &bad), tree->relative_paths.size());

  std::printf("\n*** killing node 2 ***\n\n");
  nodes[2]->stop();

  bad = 0;
  const int good = read_all(client, *tree, &bad);
  const auto stats = client.stats();
  std::printf("epoch 2 (node 2 dead):         %d/%zu files ok, %d failed\n",
              good, tree->relative_paths.size(), bad);
  std::printf("  replica fail-overs: %lu, PFS fallback opens: %lu\n",
              (unsigned long)stats.failovers,
              (unsigned long)stats.fallback_opens);
  std::printf("\nA cache must never fail the training run: every file "
              "stayed readable (paper Sec. III-H).\n");
  for (auto& node : nodes) node->stop();
  return bad == 0 ? 0 : 1;
}
