// mdtest_tool — a functional MDTest-like benchmark (paper §II-C):
// random <open-read-close> transactions against a real directory,
// either direct (optionally with GPFS-like throttling) or through a
// live HVAC allocation. Reports transactions/second.
//
//   $ ./examples/mdtest_tool [files] [file_bytes] [transactions] [mode]
//     mode: direct | gpfs | hvac
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "client/hvac_client.h"
#include "common/rng.h"
#include "server/node_runtime.h"
#include "storage/pfs_backend.h"
#include "workload/file_tree.h"

using namespace hvac;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t files = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const uint64_t bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 32 * 1024;
  const uint64_t txns = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 256;
  const std::string mode = argc > 4 ? argv[4] : "hvac";

  const std::string pfs_root = "/tmp/hvac_mdtest/pfs";
  auto tree = workload::generate_tree(
      pfs_root, workload::synthetic_small(files, bytes, /*sigma=*/0.0));
  if (!tree.ok()) return 1;

  SplitMix64 rng(0x6d64);
  std::vector<uint8_t> buf(1 << 16);
  double t0 = 0, t1 = 0;

  if (mode == "direct" || mode == "gpfs") {
    storage::PfsOptions options;  // "direct": unthrottled = XFS-on-NVMe
    if (mode == "gpfs") options = storage::gpfs_like_options();
    storage::PfsBackend pfs(pfs_root, options);
    t0 = now_seconds();
    for (uint64_t t = 0; t < txns; ++t) {
      const uint64_t idx = rng.next_below(files);
      auto data = pfs.read_all(tree->relative_paths[idx]);
      if (!data.ok()) return 1;
    }
    t1 = now_seconds();
  } else {
    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root;
    o.cache_root = "/tmp/hvac_mdtest/cache";
    o.instances = 2;
    o.pfs_options = storage::gpfs_like_options();
    server::NodeRuntime node(o);
    if (!node.start().ok()) return 1;

    client::HvacClientOptions copts;
    copts.dataset_dir = pfs_root;
    copts.server_endpoints = node.endpoints();
    client::HvacClient client(copts);

    t0 = now_seconds();
    for (uint64_t t = 0; t < txns; ++t) {
      const uint64_t idx = rng.next_below(files);
      auto fd = client.open(pfs_root + "/" + tree->relative_paths[idx]);
      if (!fd.ok()) return 1;
      for (;;) {
        auto n = client.read(*fd, buf.data(), buf.size());
        if (!n.ok()) return 1;
        if (*n == 0) break;
      }
      if (!client.close(*fd).ok()) return 1;
    }
    t1 = now_seconds();
    std::printf("%s\n", node.aggregated_metrics().to_string().c_str());
    node.stop();
  }

  std::printf("mode=%s files=%lu size=%lu B transactions=%lu\n",
              mode.c_str(), (unsigned long)files, (unsigned long)bytes,
              (unsigned long)txns);
  std::printf("elapsed %.3f s -> %.0f transactions/s\n", t1 - t0,
              double(txns) / (t1 - t0));
  return 0;
}
