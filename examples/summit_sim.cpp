// summit_sim — drive the discrete-event Summit model directly: one
// training job, chosen application/backend/node-count, full printout
// of per-epoch behaviour. The bench/fig*_ binaries sweep this same
// machinery; this example is the single-run, human-friendly view.
//
//   $ ./examples/summit_sim [app] [backend] [nodes] [epochs]
//     app      resnet50 | tresnet_m | cosmoflow | deepcam
//     backend  GPFS | XFS | HVAC(1x1) | HVAC(2x1) | HVAC(4x1)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/dl_job.h"
#include "sim/summit_config.h"

using namespace hvac;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "resnet50";
  const std::string backend = argc > 2 ? argv[2] : "HVAC(2x1)";
  const uint32_t nodes =
      argc > 3 ? uint32_t(std::strtoul(argv[3], nullptr, 10)) : 128;
  const uint32_t epochs =
      argc > 4 ? uint32_t(std::strtoul(argv[4], nullptr, 10)) : 10;

  sim::DlJobConfig job;
  if (app_name == "tresnet_m") {
    job.app = workload::tresnet_m();
  } else if (app_name == "cosmoflow") {
    job.app = workload::cosmoflow();
  } else if (app_name == "deepcam") {
    job.app = workload::deepcam();
  } else {
    job.app = workload::resnet50();
  }
  job.nodes = nodes;
  job.epochs_override = epochs;
  // Scale so each rank runs ~32 batches/epoch (keeps the event count
  // tractable; reported times are scaled back).
  const uint64_t world = uint64_t(nodes) * job.app.procs_per_node;
  const uint64_t want_files = world * job.app.batch_size * 32;
  job.dataset_scale =
      std::max<uint64_t>(1, job.app.dataset.num_files / want_files);

  const sim::SummitConfig cfg = sim::summit_defaults();
  std::printf("%s", sim::table1_string(cfg).c_str());
  std::printf("\napp=%s backend=%s nodes=%u epochs=%u "
              "(dataset 1/%lu scale)\n\n",
              job.app.name.c_str(), backend.c_str(), nodes, epochs,
              (unsigned long)job.dataset_scale);

  const sim::DlJobResult r = sim::run_dl_job(cfg, job, backend);
  std::printf("training time: %.1f min (%.1f s simulated, %lu events)\n",
              r.total_seconds / 60.0, r.total_seconds,
              (unsigned long)r.events);
  for (size_t e = 0; e < r.epoch_seconds.size(); ++e) {
    std::printf("  epoch %2zu: %8.1f s%s\n", e + 1, r.epoch_seconds[e],
                e == 0 ? "  (cold: pulls from GPFS)" : "");
  }
  std::printf("\nI/O: %.1f GB from GPFS, %.1f GB from NVMe, %.1f GB over "
              "the interconnect; cache hits %lu, misses %lu\n",
              r.io.bytes_from_gpfs / 1e9, r.io.bytes_from_nvme / 1e9,
              r.io.bytes_over_network / 1e9,
              (unsigned long)r.io.cache_hits,
              (unsigned long)r.io.cache_misses);
  std::printf("utilization: GPFS metadata %.1f%% busy, peak %u "
              "concurrent GPFS flows\n",
              100.0 * r.utilization.gpfs_meta_utilization,
              r.utilization.peak_gpfs_flows);
  return 0;
}
