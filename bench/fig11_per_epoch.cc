// Fig 11 — per-epoch analysis at 512 nodes (BS=4, Eps=10): epoch 1
// (cold), best random epoch (cached steady state) and the average
// epoch, per system. Paper shape: HVAC's epoch-1 lands near GPFS
// (every server pulls from the PFS once); cached epochs run ~3x
// faster than GPFS with HVAC(4x1).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  workload::AppSpec app = workload::resnet50();

  bench::print_header(
      "Fig 11 — Epoch-1 / R_epoch / avg epoch (s) at 512 nodes",
      "BS=4, Eps=10, ResNet50. HVAC epoch-1 ~= GPFS; cached epochs ~3x "
      "faster (4x1).");
  std::printf("%12s %12s %12s %12s\n", "system", "epoch_1", "R_epoch",
              "avg_epoch");
  double gpfs_avg = 0, hvac4_random = 0;
  for (const auto& sys : bench::all_systems()) {
    const auto r = bench::run_point(cfg, app, 512, sys, /*epochs=*/10,
                                    /*batch_size=*/4,
                                    /*batches_per_rank=*/10);
    std::printf("%12s %12.1f %12.1f %12.1f\n", sys.c_str(),
                r.first_epoch_seconds(), r.best_random_epoch_seconds(),
                r.avg_epoch_seconds());
    if (sys == "GPFS") gpfs_avg = r.avg_epoch_seconds();
    if (sys == "HVAC(4x1)") hvac4_random = r.best_random_epoch_seconds();
    std::fflush(stdout);
  }
  std::printf("\nHVAC(4x1) cached-epoch speedup over GPFS avg epoch: "
              "%.1fx (paper: ~3x)\n",
              gpfs_avg / hvac4_random);
  return 0;
}
