// Fig 9 — (a) HVAC training-time improvement normalized to GPFS
// (paper: 7-25% up to 256 nodes, >50% at 512/1024) and (b) HVAC
// overhead normalized to XFS-on-NVMe (paper ladder: 1x1 ~25%,
// 2x1 ~14%, 4x1 ~9%, roughly scale-independent).
//
// 9b is reported twice: on the 10-epoch total (which folds in the
// cold first epoch — at large scale that epoch is GPFS-bound and
// inflates the ratio) and on cached steady-state epochs, which is the
// scale-independent implementation overhead the paper attributes the
// ladder to.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  const std::vector<workload::AppSpec> apps = {
      workload::resnet50(), workload::tresnet_m(), workload::cosmoflow(),
      workload::deepcam()};
  const std::vector<uint32_t> node_counts = {32, 128, 256, 512, 1024};
  const std::vector<std::string> hvacs = {"HVAC(1x1)", "HVAC(2x1)",
                                          "HVAC(4x1)"};

  struct Row {
    std::vector<double> vs_gpfs;          // % improvement, total time
    std::vector<double> vs_xfs_total;     // % overhead, total time
    std::vector<double> vs_xfs_steady;    // % overhead, cached epochs
  };
  std::vector<Row> rows(node_counts.size());

  for (size_t ni = 0; ni < node_counts.size(); ++ni) {
    const uint32_t nodes = node_counts[ni];
    double gpfs_total = 0, xfs_total = 0, xfs_steady = 0;
    std::vector<double> hvac_total(hvacs.size(), 0.0);
    std::vector<double> hvac_steady(hvacs.size(), 0.0);
    for (const auto& app : apps) {
      gpfs_total += bench::run_point(cfg, app, nodes, "GPFS", 10, 0, 8)
                        .total_seconds;
      const auto xfs = bench::run_point(cfg, app, nodes, "XFS", 10, 0, 8);
      xfs_total += xfs.total_seconds;
      xfs_steady += xfs.avg_epoch_seconds();
      for (size_t h = 0; h < hvacs.size(); ++h) {
        const auto r =
            bench::run_point(cfg, app, nodes, hvacs[h], 10, 0, 8);
        hvac_total[h] += r.total_seconds;
        hvac_steady[h] += r.best_random_epoch_seconds();
      }
    }
    for (size_t h = 0; h < hvacs.size(); ++h) {
      rows[ni].vs_gpfs.push_back(100.0 * (1.0 - hvac_total[h] / gpfs_total));
      rows[ni].vs_xfs_total.push_back(
          100.0 * (hvac_total[h] / xfs_total - 1.0));
      rows[ni].vs_xfs_steady.push_back(
          100.0 * (hvac_steady[h] / xfs_steady - 1.0));
    }
    std::fprintf(stderr, "  [fig9] %u nodes done\n", nodes);
  }

  bench::print_header(
      "Fig 9a — HVAC improvement vs GPFS (% reduction, 10-epoch total)",
      "mean of the four applications.");
  std::printf("%7s %12s %12s %12s\n", "nodes", "HVAC(1x1)", "HVAC(2x1)",
              "HVAC(4x1)");
  for (size_t ni = 0; ni < node_counts.size(); ++ni) {
    std::printf("%7u", node_counts[ni]);
    for (double v : rows[ni].vs_gpfs) std::printf(" %11.1f%%", v);
    std::printf("\n");
  }

  bench::print_header(
      "Fig 9b — HVAC overhead vs XFS-on-NVMe (% extra time)",
      "paper ladder: 1x1 ~25%, 2x1 ~14%, 4x1 ~9%.");
  std::printf("%7s | %12s %12s %12s | %12s %12s %12s\n", "",
              "total(1x1)", "total(2x1)", "total(4x1)", "steady(1x1)",
              "steady(2x1)", "steady(4x1)");
  double total_mean[3] = {0, 0, 0}, steady_mean[3] = {0, 0, 0};
  for (size_t ni = 0; ni < node_counts.size(); ++ni) {
    std::printf("%7u |", node_counts[ni]);
    for (size_t h = 0; h < 3; ++h) {
      std::printf(" %11.1f%%", rows[ni].vs_xfs_total[h]);
      total_mean[h] += rows[ni].vs_xfs_total[h];
    }
    std::printf(" |");
    for (size_t h = 0; h < 3; ++h) {
      std::printf(" %11.1f%%", rows[ni].vs_xfs_steady[h]);
      steady_mean[h] += rows[ni].vs_xfs_steady[h];
    }
    std::printf("\n");
  }
  std::printf("%7s |", "mean");
  for (size_t h = 0; h < 3; ++h) {
    std::printf(" %11.1f%%", total_mean[h] / node_counts.size());
  }
  std::printf(" |");
  for (size_t h = 0; h < 3; ++h) {
    std::printf(" %11.1f%%", steady_mean[h] / node_counts.size());
  }
  std::printf("\n\n(the total-time ratio folds in the cold first epoch; "
              "the steady-state ratio is the paper's scale-independent "
              "implementation overhead)\n");
  return 0;
}
