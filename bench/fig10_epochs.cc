// Fig 10 — effect of the number of epochs on training time for
// ResNet50 (a) and CosmoFlow (b) at 512 nodes. Paper shape: all
// systems grow ~linearly in epochs; HVAC's advantage over GPFS grows
// with epoch count because only epoch 1 touches the PFS.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  constexpr uint32_t kNodes = 512;

  for (const auto& app : {workload::resnet50(), workload::cosmoflow()}) {
    bench::print_header(
        "Fig 10 — Training time (min) vs epochs: " + app.name,
        "nNodes=512, BS=" + std::to_string(app.batch_size) + ".");
    std::printf("%8s", "epochs");
    for (const auto& sys : bench::all_systems()) {
      std::printf(" %12s", sys.c_str());
    }
    std::printf("\n");
    for (uint32_t epochs : {2, 4, 8, 16, 32, 64, 80}) {
      std::printf("%8u", epochs);
      for (const auto& sys : bench::all_systems()) {
        const auto r = bench::run_point(cfg, app, kNodes, sys, epochs,
                                        /*batch_size=*/0,
                                        /*batches_per_rank=*/8);
        std::printf(" %12.1f", r.total_seconds / 60.0);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
