// Table I — the Summit compute-node specification as configured in
// the simulator, plus the calibration constants derived from the
// paper's own numbers.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/summit_config.h"

int main() {
  hvac::bench::print_header(
      "TABLE I (reproduction)",
      "Summit compute-node specification backing every simulated "
      "experiment.");
  std::printf("%s\n", hvac::sim::table1_string(
                          hvac::sim::summit_defaults()).c_str());
  return 0;
}
