// Ablation — segment-level caching (paper §III-E: "to ensure an even
// load-distribution among HVAC servers for datasets with highly
// skewed file sizes, segment-level caching can be implemented").
// Quantifies byte-load imbalance of whole-file vs segmented placement
// on increasingly skewed file-size populations.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/placement.h"
#include "core/segment.h"
#include "workload/dataset_spec.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Ablation — segment-level caching vs whole-file placement",
      "Byte load balance (Gini, max/mean) across 256 servers; 20k "
      "files; 8 MiB segments.");

  constexpr uint32_t kServers = 256;
  constexpr uint64_t kSegment = 8u << 20;
  core::Placement placement(kServers);

  std::printf("%10s | %12s %12s | %12s %12s\n", "skew", "whole Gini",
              "whole max/µ", "seg Gini", "seg max/µ");
  for (const double sigma : {0.0, 0.6, 1.2, 1.8, 2.4}) {
    const auto spec = workload::synthetic_small(20000, 4u << 20, sigma);
    std::vector<double> whole(kServers, 0.0), segmented(kServers, 0.0);
    for (uint64_t f = 0; f < spec.num_files; ++f) {
      const std::string path = workload::dataset_file_path(spec, f);
      const uint64_t size = spec.file_size(f);
      whole[placement.home(path)] += double(size);
      const uint64_t segs = core::segment_count(size, kSegment);
      for (uint64_t s = 0; s < segs; ++s) {
        const uint64_t seg_bytes =
            std::min<uint64_t>(kSegment, size - s * kSegment);
        segmented[placement.home(core::segment_key(path, s))] +=
            double(seg_bytes);
      }
    }
    auto max_over_mean = [](const std::vector<double>& v) {
      double sum = 0, mx = 0;
      for (double x : v) {
        sum += x;
        mx = std::max(mx, x);
      }
      return mx / (sum / double(v.size()));
    };
    std::printf("%9.1fσ | %12.4f %12.2f | %12.4f %12.2f\n", sigma,
                gini(whole), max_over_mean(whole), gini(segmented),
                max_over_mean(segmented));
  }
  std::printf("\n(segmentation keeps byte load near-uniform even under "
              "heavy size skew, at the cost of per-segment keys)\n");
  return 0;
}
