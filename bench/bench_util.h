// Shared helpers for the figure-regeneration benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/dl_job.h"
#include "sim/summit_config.h"
#include "workload/dataset_spec.h"

namespace hvac::bench {

// Dataset scale that gives each rank ~`batches_per_rank` batches per
// epoch (bounds the event count while keeping quantization noise
// negligible). Reported times are scaled back by the same factor, so
// results across node counts remain comparable full-dataset
// estimates.
inline uint64_t adaptive_scale(const workload::AppSpec& app, uint32_t nodes,
                               uint64_t batches_per_rank = 16) {
  const uint64_t world = uint64_t(nodes) * app.procs_per_node;
  const uint64_t want = world * app.batch_size * batches_per_rank;
  return std::max<uint64_t>(1, app.dataset.num_files / std::max<uint64_t>(
                                                           want, 1));
}

inline sim::DlJobResult run_point(const sim::SummitConfig& cfg,
                                  const workload::AppSpec& app,
                                  uint32_t nodes,
                                  const std::string& backend,
                                  uint32_t epochs = 0,
                                  uint32_t batch_size = 0,
                                  uint64_t batches_per_rank = 16) {
  sim::DlJobConfig job;
  job.app = app;
  if (batch_size != 0) {
    // Per-sample compute cost is a property of the model, not the
    // batch size: rescale the per-batch figure.
    job.app.compute_seconds_per_batch = app.compute_seconds_per_batch *
                                        double(batch_size) /
                                        double(app.batch_size);
    job.app.batch_size = batch_size;
  }
  job.nodes = nodes;
  job.epochs_override = epochs;
  job.dataset_scale = adaptive_scale(job.app, nodes, batches_per_rank);
  return sim::run_dl_job(cfg, job, backend);
}

inline const std::vector<std::string>& all_systems() {
  static const std::vector<std::string> systems{
      "GPFS", "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)", "XFS"};
  return systems;
}

inline void print_header(const std::string& title,
                         const std::string& caption) {
  std::printf("==================================================="
              "===========================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", caption.c_str());
  std::printf("==================================================="
              "===========================\n");
}

}  // namespace hvac::bench
