// Microbenchmarks over the *real* RPC stack on loopback: synchronous
// round-trip latency, async pipelined throughput, and bulk-read
// bandwidth — the functional analogue of Mercury's performance
// envelope.
#include <arpa/inet.h>
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "client/hvac_client.h"
#include "common/buffer_pool.h"
#include "common/trace.h"
#include "core/timeseries.h"
#include "server/prom_exporter.h"
#include "rpc/async_client.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"
#include "server/hvac_server.h"
#include "storage/packed_format.h"
#include "storage/pfs_backend.h"
#include "workload/file_tree.h"

namespace {

using namespace hvac::rpc;

// Backing file for the extent (zero-copy) benchmarks: 8 MiB of
// pattern bytes, unlinked, fd kept open for the binary's lifetime.
constexpr size_t kBenchFileSize = 8 << 20;

int shared_file() {
  static const int fd = [] {
    std::string path = "/tmp/hvac_bench_src_XXXXXX";
    const int f = ::mkstemp(path.data());
    if (f < 0) std::abort();
    ::unlink(path.c_str());
    Bytes data(kBenchFileSize);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>((i * 31 + 7) % 251);
    }
    if (::pwrite(f, data.data(), data.size(), 0) !=
        ssize_t(data.size())) {
      std::abort();
    }
    return f;
  }();
  return fd;
}

// One server for the whole binary.
RpcServer& shared_server() {
  static RpcServer* server = [] {
    auto* s = new RpcServer(RpcServerOptions{"127.0.0.1:0", 8});
    s->register_handler(1, [](const Bytes& req) -> hvac::Result<Bytes> {
      Bytes out = req;
      return out;
    });
    s->register_handler(2, [](const Bytes& req) -> hvac::Result<Bytes> {
      // "bulk read": returns a payload of the requested size.
      WireReader r(req);
      auto n = r.get_u32();
      Bytes out(n.ok() ? *n : 0);
      return out;
    });
    // Opcode 3 is opcode 2 on the pooled hot path: pread the bytes
    // into a pooled lease and send them with one gathered write, the
    // way the server's read handlers respond with zero-copy off.
    s->register_payload_handler(3, [](const Bytes& req)
                                       -> hvac::Result<Payload> {
      WireReader r(req);
      auto n = r.get_u32();
      const uint32_t count = n.ok() ? *n : 0;
      auto lease = hvac::BufferPool::global().acquire(kBlobPrefix + count);
      if (::pread(shared_file(), lease.data() + kBlobPrefix, count, 0) !=
          ssize_t(count)) {
        return hvac::Error(hvac::ErrorCode::kIoError, "bench pread");
      }
      return blob_payload(std::move(lease), count);
    });
    // Opcode 4 is opcode 3 with a file-backed body: the bytes go out
    // kernel-to-kernel (sendfile by default; HVAC_ZEROCOPY picks the
    // rung) and never touch user space on the server.
    s->register_payload_handler(4, [](const Bytes& req)
                                       -> hvac::Result<Payload> {
      WireReader r(req);
      auto n = r.get_u32();
      FileExtent ext;
      ext.fd = shared_file();
      ext.offset = 0;
      ext.length = n.ok() ? *n : 0;
      return blob_extent_payload(std::move(ext));
    });
    // Opcode 5: scatter frame — n extents of `len` bytes each in ONE
    // framed response, the shape a read-ahead batch collapses into.
    s->register_payload_handler(5, [](const Bytes& req)
                                       -> hvac::Result<Payload> {
      WireReader r(req);
      auto n = r.get_u32();
      auto len = r.get_u32();
      const uint32_t count = n.ok() ? *n : 0;
      const uint32_t each = len.ok() ? *len : 0;
      WireWriter table;
      table.put_u32(count);
      for (uint32_t i = 0; i < count; ++i) {
        table.put_u64(uint64_t(i) * each);
        table.put_u32(each);
      }
      Payload p(table.bytes());
      for (uint32_t i = 0; i < count; ++i) {
        FileExtent ext;
        ext.fd = shared_file();
        ext.offset = uint64_t(i) * each;
        ext.length = each;
        p.add_extent(std::move(ext));
      }
      return p;
    });
    if (!s->start().ok()) std::abort();
    return s;
  }();
  return *server;
}

void BM_SyncRoundTrip(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  Bytes msg(64);
  for (auto _ : state) {
    auto resp = client.call(1, msg);
    if (!resp.ok()) state.SkipWithError("call failed");
  }
}
BENCHMARK(BM_SyncRoundTrip);

void BM_AsyncPipelined(benchmark::State& state) {
  AsyncRpcClient client(shared_server().endpoint());
  const size_t window = size_t(state.range(0));
  Bytes msg(64);
  for (auto _ : state) {
    std::vector<std::future<hvac::Result<Bytes>>> futures;
    futures.reserve(window);
    for (size_t i = 0; i < window; ++i) {
      futures.push_back(client.call_async(1, msg));
    }
    for (auto& f : futures) {
      if (!f.get().ok()) state.SkipWithError("call failed");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(window));
}
BENCHMARK(BM_AsyncPipelined)->Arg(1)->Arg(8)->Arg(64);

void BM_BulkRead(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  WireWriter w;
  w.put_u32(uint32_t(state.range(0)));
  const Bytes req = w.bytes();
  for (auto _ : state) {
    auto resp = client.call(2, req);
    if (!resp.ok()) state.SkipWithError("call failed");
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BulkRead)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

// Shared body for the pooled-vs-zerocopy comparison: each benchmark
// thread is an independent client issuing bulk reads, the way N
// DataLoader workers hammer one HVAC server. Concurrency matters for
// the comparison — zero-copy's win is the server-side staging work it
// deletes, which only shows once more than one stream contends for
// the CPU.
void bulk_read_payload(benchmark::State& state, uint16_t opcode) {
  RpcClient client(shared_server().endpoint());
  WireWriter w;
  w.put_u32(uint32_t(state.range(0)));
  const Bytes req = w.bytes();
  for (auto _ : state) {
    auto resp = client.call_payload(opcode, req);
    if (!resp.ok()) {
      state.SkipWithError("call failed");
      continue;
    }
    WireReader r(resp->data(), resp->size());
    auto view = r.get_blob_view();
    if (!view.ok() || view->size != size_t(state.range(0))) {
      state.SkipWithError("bad blob");
    }
    benchmark::DoNotOptimize(view->data);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}

// The bulk read the way the server answers with zero-copy off: pread
// into a pooled lease, one gathered write ("BENCH_rpc.json" carries
// both series; scripts/bench_compare.py reports the ratio).
void BM_BulkReadPooled(benchmark::State& state) {
  bulk_read_payload(state, 3);
}
BENCHMARK(BM_BulkReadPooled)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Threads(8)
    ->UseRealTime();

// The same bulk read with the response body sent straight from the
// kernel page cache (sendfile): the server stages zero payload bytes
// in user space.
void BM_BulkReadZeroCopy(benchmark::State& state) {
  bulk_read_payload(state, 4);
}
BENCHMARK(BM_BulkReadZeroCopy)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Threads(8)
    ->UseRealTime();

// A read-ahead batch as one scatter response: n extents of 128 KiB in
// a single frame versus n separate round trips (BM_BulkReadZeroCopy at
// 128 KiB, n times).
void BM_ScatterRead(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  const uint32_t n = uint32_t(state.range(0));
  const uint32_t each = 128 << 10;
  WireWriter w;
  w.put_u32(n);
  w.put_u32(each);
  const Bytes req = w.bytes();
  for (auto _ : state) {
    auto resp = client.call_payload(5, req);
    if (!resp.ok()) {
      state.SkipWithError("call failed");
      continue;
    }
    auto view = decode_scatter(resp->data(), resp->size());
    if (!view.ok() || view->extents.size() != n) {
      state.SkipWithError("bad scatter frame");
    }
    benchmark::DoNotOptimize(view->extents.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) *
                          int64_t(each));
}
BENCHMARK(BM_ScatterRead)->Arg(1)->Arg(4)->Arg(16);

// BM_BulkReadZeroCopy with tracing ON: every iteration roots a span
// (like a traced client read) and the RPC stack emits its usual span
// set, so the pair quantifies the *enabled* tracing tax. The untraced
// series above stays the bench_compare.py regression baseline — its
// only cost when HVAC_TRACE=0 is one relaxed load per site.
void BM_BulkReadZeroCopyTraced(benchmark::State& state) {
  hvac::trace::init_for_test(true, 1u << 15);
  RpcClient client(shared_server().endpoint());
  WireWriter w;
  w.put_u32(uint32_t(state.range(0)));
  const Bytes req = w.bytes();
  int64_t n = 0;
  for (auto _ : state) {
    hvac::trace::Span span("bench.read", uint64_t(state.range(0)));
    auto resp = client.call_payload(4, req);
    if (!resp.ok()) {
      state.SkipWithError("call failed");
      continue;
    }
    WireReader r(resp->data(), resp->size());
    auto view = r.get_blob_view();
    if (!view.ok() || view->size != size_t(state.range(0))) {
      state.SkipWithError("bad blob");
    }
    benchmark::DoNotOptimize(view->data);
    // One thread plays the metrics poller so rings don't sit full and
    // the push path (not the cheaper drop path) is what gets timed.
    if (state.thread_index() == 0 && (++n & 1023) == 0) {
      benchmark::DoNotOptimize(hvac::trace::drain().size());
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(hvac::trace::drain().size());
    hvac::trace::init_for_test(false, 0);
  }
}
BENCHMARK(BM_BulkReadZeroCopyTraced)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Threads(8)
    ->UseRealTime();

// --- Telemetry-plane overhead ---------------------------------------
//
// BM_BulkReadZeroCopy with the telemetry plane ON, compressed to its
// cost centers: a collector thread ticking at the hvacd cadence
// (frame snapshot -> frame_delta -> ring push every 100 ms) and an
// OpenMetrics exporter scraped every 200 ms over loopback HTTP, with
// each scrape also encoding the ring — the kTimeSeries reply a
// `hvacctl top` poller triggers. Everything shares the benchmark's
// cores, so the series pair (plain vs Telemetry) is the enabled tax;
// scripts/bench_compare.py reads it as an advisory <=5% gate.

class TelemetryPlane {
 public:
  TelemetryPlane()
      : ring_(300),
        exporter_(0, [] { return live_frame(); }) {
    if (!exporter_.start().ok()) std::abort();
    collector_ = std::thread([this] { collect(); });
    scraper_ = std::thread([this] { scrape(); });
  }

  ~TelemetryPlane() {
    stop_.store(true, std::memory_order_relaxed);
    collector_.join();
    scraper_.join();
    exporter_.stop();
  }

 private:
  // The live sections this bench actually moves (buffer pool,
  // zero-copy sends) plus busy-server histograms and stall rows, so
  // snapshot/delta/encode/render cost what a loaded hvacd's do.
  static hvac::core::MetricsFrame live_frame() {
    hvac::core::MetricsFrame f;
    const hvac::BufferPool::Stats bp = hvac::BufferPool::aggregated_stats();
    f.buffer_pool.leases = bp.hits + bp.misses + bp.unpooled;
    f.buffer_pool.pool_hits = bp.hits;
    f.buffer_pool.fallback_allocs = bp.misses + bp.unpooled;
    f.buffer_pool.recycled = bp.recycled;
    f.buffer_pool.dropped = bp.dropped;
    const ZeroCopyCounters& zc = ZeroCopyCounters::global();
    f.zerocopy.sendfile_sends =
        zc.sendfile_sends.load(std::memory_order_relaxed);
    f.zerocopy.splice_sends = zc.splice_sends.load(std::memory_order_relaxed);
    f.zerocopy.fallback_sends =
        zc.fallback_sends.load(std::memory_order_relaxed);
    f.zerocopy.sendfile_bytes =
        zc.sendfile_bytes.load(std::memory_order_relaxed);
    f.zerocopy.splice_bytes = zc.splice_bytes.load(std::memory_order_relaxed);
    f.zerocopy.short_resumes =
        zc.short_resumes.load(std::memory_order_relaxed);
    for (uint16_t op : {hvac::proto::kOpen, hvac::proto::kRead,
                        hvac::proto::kClose, hvac::proto::kReadScatter}) {
      hvac::core::LatencySnapshot lat;
      lat.count = 100000;
      lat.total_ns = uint64_t{100000} * 20000;
      for (size_t b = 10; b < 22; ++b) lat.buckets[b] = lat.count / 12;
      f.op_latency[op] = lat;
    }
    f.stall.epochs = {{1, 4096, 5000000, 1000000, 2500000, 1000000,
                       400000, 100000}};
    return f;
  }

  void collect() {
    hvac::core::MetricsFrame prev = live_frame();
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      hvac::core::MetricsFrame cur = live_frame();
      hvac::core::TimeSeriesSample s;
      s.t_ms = hvac::trace::now_ns() / 1000000;
      s.interval_ms = 100;
      s.delta = hvac::core::frame_delta(cur, prev);
      ring_.push(std::move(s));
      prev = std::move(cur);
    }
  }

  void scrape() {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      benchmark::DoNotOptimize(ring_.encode(100).size());
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) continue;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(exporter_.port());
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        const char req[] =
            "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
        (void)!::send(fd, req, sizeof(req) - 1, 0);
        char buf[4096];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
      }
      ::close(fd);
    }
  }

  hvac::core::TimeSeriesRing ring_;
  hvac::server::PromExporter exporter_;
  std::atomic<bool> stop_{false};
  std::thread collector_;
  std::thread scraper_;
};

TelemetryPlane* g_telemetry_plane = nullptr;
int g_telemetry_plane_refs = 0;
std::mutex g_telemetry_plane_mu;

void BM_BulkReadZeroCopyTelemetry(benchmark::State& state) {
  {
    std::lock_guard<std::mutex> lock(g_telemetry_plane_mu);
    if (g_telemetry_plane_refs++ == 0) {
      g_telemetry_plane = new TelemetryPlane();
    }
  }
  bulk_read_payload(state, 4);
  {
    std::lock_guard<std::mutex> lock(g_telemetry_plane_mu);
    if (--g_telemetry_plane_refs == 0) {
      delete g_telemetry_plane;
      g_telemetry_plane = nullptr;
    }
  }
}
BENCHMARK(BM_BulkReadZeroCopyTelemetry)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Threads(8)
    ->UseRealTime();

// --- Sharded-reactor saturation ------------------------------------
//
// The reactor-scaling gate: 64 connections (8 bench threads x 8 async
// clients each) hammering one server with small reads (4-64 KiB, the
// DL-sample shape), once with a single reactor and once with four.
// The handler is an inline extent read, so the whole request lives on
// the owning reactor — what scales (or doesn't) is the server core
// itself: accept sharding, per-reactor epoll, decode and the
// zero-copy send. scripts/bench_compare.py reads the two series as an
// advisory scaling gate (the ratio only means something on a
// multi-core runner).

// One server per reactor count, created on first use and kept for the
// binary's lifetime like shared_server().
RpcServer& saturated_server(int reactors) {
  static std::mutex mu;
  static std::map<int, RpcServer*> servers;
  std::lock_guard<std::mutex> lock(mu);
  auto it = servers.find(reactors);
  if (it != servers.end()) return *it->second;
  RpcServerOptions o;
  o.bind_address = "127.0.0.1:0";
  o.handler_threads = size_t(reactors);
  o.reactors = size_t(reactors);
  auto* s = new RpcServer(o);
  s->register_payload_handler(
      4,
      [](const Bytes& req) -> hvac::Result<Payload> {
        WireReader r(req);
        auto n = r.get_u32();
        FileExtent ext;
        ext.fd = shared_file();
        ext.offset = 0;
        ext.length = n.ok() ? *n : 0;
        return blob_extent_payload(std::move(ext));
      },
      DispatchHint::kInline);
  if (!s->start().ok()) std::abort();
  servers[reactors] = s;
  return *s;
}

void BM_SaturatedSmallReads(benchmark::State& state) {
  RpcServer& server = saturated_server(int(state.range(0)));
  constexpr size_t kClientsPerThread = 8;
  static constexpr uint32_t kSizes[] = {4 << 10, 8 << 10, 16 << 10,
                                        32 << 10, 64 << 10};
  std::vector<std::unique_ptr<AsyncRpcClient>> clients;
  clients.reserve(kClientsPerThread);
  for (size_t i = 0; i < kClientsPerThread; ++i) {
    clients.push_back(std::make_unique<AsyncRpcClient>(server.endpoint()));
  }
  size_t cursor = size_t(state.thread_index());
  int64_t bytes = 0;
  for (auto _ : state) {
    std::vector<std::future<hvac::Result<Bytes>>> futures;
    futures.reserve(kClientsPerThread);
    for (auto& c : clients) {
      const uint32_t n = kSizes[cursor++ % (sizeof(kSizes) / sizeof(*kSizes))];
      WireWriter w;
      w.put_u32(n);
      futures.push_back(c->call_async(4, w.bytes()));
      bytes += n;
    }
    for (auto& f : futures) {
      if (!f.get().ok()) state.SkipWithError("call failed");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(kClientsPerThread));
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SaturatedSmallReads)
    ->ArgName("reactors")
    ->Arg(1)
    ->Arg(4)
    ->Threads(8)
    ->UseRealTime();

// --- Packed-container small reads ----------------------------------
//
// The small-file gate (FanStore-style packing): the per-file protocol
// (kOpen + kRead + kClose per sample, three round trips and a server
// open(2) each) against the packed protocol (one kReadScatter by
// path; the server serves by offset out of an already-open container
// handle). Both run against a REAL HvacServer over a real PFS tree at
// the DL-sample sizes. scripts/bench_compare.py pairs the two series
// as an advisory gate: packed must be >= 2x the per-file path.

struct SmallFileFixture {
  std::string pfs_root;
  std::string cache_root;
  std::unique_ptr<hvac::storage::PfsBackend> pfs;
  std::unique_ptr<hvac::server::HvacServer> server;
  std::vector<std::string> paths;  // logical sample paths

  SmallFileFixture(uint32_t file_bytes, bool packed) {
    const std::string tag = (packed ? "packed_" : "perfile_") +
                            std::to_string(file_bytes);
    pfs_root = "/tmp/hvac_bench_" + tag + "_pfs_" +
               std::to_string(::getpid());
    cache_root = "/tmp/hvac_bench_" + tag + "_cache_" +
                 std::to_string(::getpid());
    std::filesystem::remove_all(pfs_root);
    std::filesystem::remove_all(cache_root);
    const auto spec =
        hvac::workload::synthetic_small(128, file_bytes, 0.0);
    const auto tree = hvac::workload::generate_tree(pfs_root, spec);
    if (!tree.ok()) std::abort();
    paths = tree->relative_paths;
    if (packed) {
      hvac::storage::PackOptions po;
      po.container_bytes = 4 << 20;
      if (!hvac::storage::pack_tree(pfs_root, po).ok()) std::abort();
    }
    pfs = std::make_unique<hvac::storage::PfsBackend>(pfs_root);
    hvac::server::HvacServerOptions o;
    o.cache_dir = cache_root;
    o.rpc_handler_threads = 4;
    o.packed_enabled = packed;
    server = std::make_unique<hvac::server::HvacServer>(pfs.get(), o);
    if (!server->start().ok()) std::abort();
    // Pre-warm so the measured loop is the steady-state hit path.
    RpcClient warm(Endpoint{server->address()});
    for (const auto& p : paths) {
      WireWriter w;
      w.put_string(p);
      if (!warm.call(hvac::proto::kPrefetch, w).ok()) std::abort();
    }
  }
};

SmallFileFixture& small_file_fixture(uint32_t file_bytes, bool packed) {
  static std::mutex mu;
  static std::map<std::pair<uint32_t, bool>, SmallFileFixture*> fixtures;
  std::lock_guard<std::mutex> lock(mu);
  auto*& slot = fixtures[{file_bytes, packed}];
  if (slot == nullptr) slot = new SmallFileFixture(file_bytes, packed);
  return *slot;
}

// Per-file protocol: what every sample of an unpacked tree costs.
void BM_SmallFileReads(benchmark::State& state) {
  const uint32_t file_bytes = uint32_t(state.range(0));
  SmallFileFixture& f = small_file_fixture(file_bytes, /*packed=*/false);
  RpcClient client(Endpoint{f.server->address()});
  size_t cursor = 0;
  for (auto _ : state) {
    const std::string& path = f.paths[cursor++ % f.paths.size()];
    WireWriter open;
    open.put_string(path);
    const auto opened = client.call(hvac::proto::kOpen, open);
    if (!opened.ok()) { state.SkipWithError("open failed"); break; }
    WireReader r(*opened);
    const auto fd = r.get_u64();
    const auto size = r.get_u64();
    WireWriter read;
    read.put_u64(fd.ok() ? *fd : 0);
    read.put_u64(0);
    read.put_u32(uint32_t(size.ok() ? *size : 0));
    const auto data = client.call_payload(hvac::proto::kRead,
                                          read.bytes());
    if (!data.ok()) { state.SkipWithError("read failed"); break; }
    WireWriter close;
    close.put_u64(fd.ok() ? *fd : 0);
    if (!client.call(hvac::proto::kClose, close).ok()) {
      state.SkipWithError("close failed");
      break;
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.SetBytesProcessed(int64_t(state.iterations()) * file_bytes);
}
BENCHMARK(BM_SmallFileReads)
    ->ArgName("bytes")
    ->Arg(4 << 10)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->UseRealTime();

// Packed protocol: one scatter read by path per sample — the client
// resolved open/stat from its fetched index, so this ONE round trip
// is the whole per-sample cost.
void BM_PackedSmallReads(benchmark::State& state) {
  const uint32_t file_bytes = uint32_t(state.range(0));
  SmallFileFixture& f = small_file_fixture(file_bytes, /*packed=*/true);
  RpcClient client(Endpoint{f.server->address()});
  size_t cursor = 0;
  for (auto _ : state) {
    const std::string& path = f.paths[cursor++ % f.paths.size()];
    WireWriter w;
    w.put_u8(1);  // by path
    w.put_string(path);
    w.put_u32(1);
    w.put_u64(0);
    w.put_u32(file_bytes);
    const auto resp =
        client.call_payload(hvac::proto::kReadScatter, w.bytes());
    if (!resp.ok()) { state.SkipWithError("scatter read failed"); break; }
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  state.SetBytesProcessed(int64_t(state.iterations()) * file_bytes);
}
BENCHMARK(BM_PackedSmallReads)
    ->ArgName("bytes")
    ->Arg(4 << 10)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->UseRealTime();

// --- Clairvoyant epoch reads ----------------------------------------
//
// One COLD training epoch per iteration: a fresh server (empty cache)
// over a congested-PFS model, a fresh client, one pass over every
// sample front to back. Three variants of the same pass:
//
//   Demand       no prefetch of any kind (the seed behaviour)
//   ReadAhead    sequential read-ahead inside each file — it cannot
//                cross file boundaries, so every file still pays the
//                cold PFS fetch in line
//   Clairvoyant  the epoch plan is handed to the scheduler up front;
//                fetches run ahead of the cursor on the mover threads
//                and overlap with the foreground reads
//
// scripts/bench_compare.py reads the three series as an advisory
// gate: clairvoyant must beat read-ahead by >= 1.5x on the cold
// epoch.

struct EpochTree {
  std::string pfs_root;
  std::vector<std::string> abs_paths;
};

EpochTree& epoch_tree() {
  static EpochTree* tree = [] {
    auto* e = new EpochTree;
    e->pfs_root =
        "/tmp/hvac_bench_epoch_pfs_" + std::to_string(::getpid());
    std::filesystem::remove_all(e->pfs_root);
    const auto spec =
        hvac::workload::synthetic_small(64, 128 << 10, 0.0);
    const auto t = hvac::workload::generate_tree(e->pfs_root, spec);
    if (!t.ok()) std::abort();
    for (const auto& rel : t->relative_paths) {
      e->abs_paths.push_back(e->pfs_root + "/" + rel);
    }
    return e;
  }();
  return *tree;
}

void epoch_read(benchmark::State& state, int mode) {
  EpochTree& tree = epoch_tree();
  size_t serial = 0;
  for (auto _ : state) {
    state.PauseTiming();
    hvac::storage::PfsOptions pfs_options;
    pfs_options.metadata_latency_us = 400;  // busy-MDS model
    pfs_options.seed = 42 + serial;
    hvac::storage::PfsBackend pfs(tree.pfs_root, pfs_options);
    const std::string cache = "/tmp/hvac_bench_epoch_cache_" +
                              std::to_string(::getpid()) + "_" +
                              std::to_string(serial++);
    std::filesystem::remove_all(cache);
    hvac::server::HvacServerOptions so;
    so.cache_dir = cache;
    so.rpc_handler_threads = 4;
    so.data_mover_threads = 4;
    auto server =
        std::make_unique<hvac::server::HvacServer>(&pfs, so);
    if (!server->start().ok()) std::abort();
    hvac::client::HvacClientOptions copts;
    copts.dataset_dir = tree.pfs_root;
    copts.server_endpoints = {server->address()};
    copts.read_chunk_bytes = 32 << 10;
    copts.readahead_chunks = mode == 0 ? 0 : 4;
    if (mode == 2) copts.prefetch_depth = 64;
    auto client = std::make_unique<hvac::client::HvacClient>(copts);
    state.ResumeTiming();

    if (mode == 2) client->set_access_plan(tree.abs_paths);
    std::vector<uint8_t> buf(32 << 10);
    for (const auto& path : tree.abs_paths) {
      auto fd = client->open(path);
      if (!fd.ok()) { state.SkipWithError("open failed"); break; }
      for (;;) {
        auto n = client->read(*fd, buf.data(), buf.size());
        if (!n.ok()) { state.SkipWithError("read failed"); break; }
        if (*n == 0) break;
      }
      (void)client->close(*fd);
    }

    state.PauseTiming();
    client.reset();  // joins the scheduler before the server dies
    server->stop();
    server.reset();
    std::filesystem::remove_all(cache);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(tree.abs_paths.size()));
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(tree.abs_paths.size()) * (128 << 10));
}

void BM_EpochReadDemand(benchmark::State& state) {
  epoch_read(state, 0);
}
BENCHMARK(BM_EpochReadDemand)->UseRealTime();

void BM_EpochReadReadAhead(benchmark::State& state) {
  epoch_read(state, 1);
}
BENCHMARK(BM_EpochReadReadAhead)->UseRealTime();

void BM_EpochReadClairvoyant(benchmark::State& state) {
  epoch_read(state, 2);
}
BENCHMARK(BM_EpochReadClairvoyant)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
