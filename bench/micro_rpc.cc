// Microbenchmarks over the *real* RPC stack on loopback: synchronous
// round-trip latency, async pipelined throughput, and bulk-read
// bandwidth — the functional analogue of Mercury's performance
// envelope.
#include <benchmark/benchmark.h>

#include "common/buffer_pool.h"
#include "rpc/async_client.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"

namespace {

using namespace hvac::rpc;

// One server for the whole binary.
RpcServer& shared_server() {
  static RpcServer* server = [] {
    auto* s = new RpcServer(RpcServerOptions{"127.0.0.1:0", 2});
    s->register_handler(1, [](const Bytes& req) -> hvac::Result<Bytes> {
      Bytes out = req;
      return out;
    });
    s->register_handler(2, [](const Bytes& req) -> hvac::Result<Bytes> {
      // "bulk read": returns a payload of the requested size.
      WireReader r(req);
      auto n = r.get_u32();
      Bytes out(n.ok() ? *n : 0);
      return out;
    });
    // Opcode 3 is opcode 2 on the zero-copy path: the payload lives in
    // a pooled lease and goes out with one gathered write, the way the
    // server's read handlers respond.
    s->register_payload_handler(3, [](const Bytes& req)
                                       -> hvac::Result<Payload> {
      WireReader r(req);
      auto n = r.get_u32();
      const uint32_t count = n.ok() ? *n : 0;
      auto lease = hvac::BufferPool::global().acquire(kBlobPrefix + count);
      return blob_payload(std::move(lease), count);
    });
    if (!s->start().ok()) std::abort();
    return s;
  }();
  return *server;
}

void BM_SyncRoundTrip(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  Bytes msg(64);
  for (auto _ : state) {
    auto resp = client.call(1, msg);
    if (!resp.ok()) state.SkipWithError("call failed");
  }
}
BENCHMARK(BM_SyncRoundTrip);

void BM_AsyncPipelined(benchmark::State& state) {
  AsyncRpcClient client(shared_server().endpoint());
  const size_t window = size_t(state.range(0));
  Bytes msg(64);
  for (auto _ : state) {
    std::vector<std::future<hvac::Result<Bytes>>> futures;
    futures.reserve(window);
    for (size_t i = 0; i < window; ++i) {
      futures.push_back(client.call_async(1, msg));
    }
    for (auto& f : futures) {
      if (!f.get().ok()) state.SkipWithError("call failed");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(window));
}
BENCHMARK(BM_AsyncPipelined)->Arg(1)->Arg(8)->Arg(64);

void BM_BulkRead(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  WireWriter w;
  w.put_u32(uint32_t(state.range(0)));
  const Bytes req = w.bytes();
  for (auto _ : state) {
    auto resp = client.call(2, req);
    if (!resp.ok()) state.SkipWithError("call failed");
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BulkRead)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

// The same bulk read over the zero-copy path: pooled payload handler
// and gathered write on the server, pooled receive buffer and blob
// view on the client. Compare against BM_BulkRead at equal sizes for
// the hot-path win ("BENCH_rpc.json" carries both series).
void BM_BulkReadPooled(benchmark::State& state) {
  RpcClient client(shared_server().endpoint());
  WireWriter w;
  w.put_u32(uint32_t(state.range(0)));
  const Bytes req = w.bytes();
  for (auto _ : state) {
    auto resp = client.call_payload(3, req);
    if (!resp.ok()) {
      state.SkipWithError("call failed");
      continue;
    }
    WireReader r(resp->data(), resp->size());
    auto view = r.get_blob_view();
    if (!view.ok() || view->size != size_t(state.range(0))) {
      state.SkipWithError("bad blob");
    }
    benchmark::DoNotOptimize(view->data);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BulkReadPooled)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

}  // namespace

BENCHMARK_MAIN();
