// Fig 15 — per-server file-distribution CDF with scaling node counts.
// Uses the *real* placement function over an ImageNet21K-style file
// population. Paper finding: distribution tracks the ideal CDF
// closely, with visible deviation only below ~128 nodes (small-number
// effects plus skewed file sizes).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/placement.h"
#include "workload/dataset_spec.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Fig 15 — Per-server file distribution vs ideal CDF",
      "Real hash placement over an ImageNet21K-style population "
      "(1/8 scale for runtime).");

  const auto dataset = workload::imagenet21k().scaled(8);  // 1.47M files

  std::printf("%7s %10s %10s %10s %10s %12s\n", "nodes", "min/ideal",
              "p50/ideal", "max/ideal", "CoV", "Gini");
  for (uint32_t nodes : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    core::Placement placement(nodes);
    std::vector<double> files_per_server(nodes, 0.0);
    std::vector<double> bytes_per_server(nodes, 0.0);
    for (uint64_t f = 0; f < dataset.num_files; ++f) {
      const uint32_t s =
          placement.home(workload::dataset_file_path(dataset, f));
      files_per_server[s] += 1.0;
      bytes_per_server[s] += double(dataset.file_size(f));
    }
    const double ideal = double(dataset.num_files) / nodes;
    std::vector<double> sorted = files_per_server;
    std::sort(sorted.begin(), sorted.end());
    std::printf("%7u %10.3f %10.3f %10.3f %10.4f %12.4f\n", nodes,
                sorted.front() / ideal, percentile(sorted, 50) / ideal,
                sorted.back() / ideal,
                coefficient_of_variation(files_per_server),
                gini(bytes_per_server));
    std::fflush(stdout);
  }

  std::printf("\nCDF of per-server file share at 512 nodes "
              "(x = files/ideal):\n");
  core::Placement placement(512);
  std::vector<double> counts(512, 0.0);
  for (uint64_t f = 0; f < dataset.num_files; ++f) {
    ++counts[placement.home(workload::dataset_file_path(dataset, f))];
  }
  const double ideal = double(dataset.num_files) / 512;
  std::vector<double> normalized;
  for (double c : counts) normalized.push_back(c / ideal);
  for (double x : {0.90, 0.95, 0.98, 1.0, 1.02, 1.05, 1.10}) {
    const double cdf = cdf_at(normalized, {x})[0];
    std::printf("  CDF(%4.2f) = %5.1f%%\n", x, 100 * cdf);
  }
  return 0;
}
