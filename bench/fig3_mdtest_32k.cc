// Fig 3 — MDTest: transactions/second for 32 KB random file
// open-read-close on Summit, GPFS vs XFS-on-NVMe, scaling nodes.
// Paper shape: XFS grows ~linearly with node count; GPFS plateaus at
// the metadata service rate.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/mdtest.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Fig 3 — MDTest 32KB open-read-close transactions/s",
      "GPFS saturates on metadata; node-local XFS scales with nodes.");

  const sim::SummitConfig cfg = sim::summit_defaults();
  std::printf("%8s %16s %16s %10s\n", "nodes", "GPFS tx/s",
              "XFS-on-NVMe tx/s", "XFS/GPFS");
  for (uint32_t nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    sim::MdTestConfig test;
    test.nodes = nodes;
    test.file_bytes = 32 * 1024;
    test.transactions_per_rank = 60;
    const double gpfs =
        run_mdtest(cfg, test, "GPFS").transactions_per_second;
    const double xfs =
        run_mdtest(cfg, test, "XFS").transactions_per_second;
    std::printf("%8u %16.0f %16.0f %9.1fx\n", nodes, gpfs, xfs,
                xfs / gpfs);
  }
  return 0;
}
