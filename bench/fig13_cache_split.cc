// Fig 13 — impact of the local/remote cache split on HVAC(1x1) at
// 512 nodes: the dataset residency is forced to L% on the requesting
// node and R% on remote nodes. Paper finding: negligible difference —
// Mercury bulk transfers over the fat InfiniBand make remote NVMe
// almost as close as local NVMe.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  workload::AppSpec app = workload::resnet50();
  app.batch_size = 80;  // paper caption: BS=80

  bench::print_header(
      "Fig 13 — Training time (min) vs cache locality split, HVAC(1x1)",
      "BS=80, nNodes=512. L%/R% = dataset fraction on local/remote "
      "nodes.");

  std::printf("%16s %16s\n", "L% / R%", "training (min)");
  double t_local = 0, t_remote = 0;
  for (const double local_fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    sim::DlJobConfig job;
    job.app = app;
    job.nodes = 512;
    job.epochs_override = 10;
    job.dataset_scale = bench::adaptive_scale(job.app, job.nodes, 8);
    sim::HvacSimOptions options;
    options.instances_per_node = 1;
    options.forced_local_fraction = local_fraction;
    const auto r = sim::run_dl_job(cfg, job, "HVAC", &options);
    std::printf("%8.0f%% / %3.0f%% %16.1f\n", local_fraction * 100,
                (1 - local_fraction) * 100, r.total_seconds / 60.0);
    if (local_fraction == 1.0) t_local = r.total_seconds;
    if (local_fraction == 0.0) t_remote = r.total_seconds;
    std::fflush(stdout);
  }
  std::printf("\n100%% remote vs 100%% local penalty: %.1f%% "
              "(paper: negligible)\n",
              100.0 * (t_remote / t_local - 1.0));
  return 0;
}
