// Ablation — replication & fail-over (paper §III-H: "if the
// node-local NVMe fails, [single-home placement can] lead to a failed
// training run... it is reasonable to enable data replication within
// the allocation... and enable the calculation of fail-over
// locations"). We kill a fraction of the HVAC servers mid-training
// and compare r=1 (lost files fall back to GPFS forever) against r=2
// rendezvous replication (lost files fail over to their second home).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Ablation — replication & fail-over under server loss",
      "ResNet50, 1024 nodes, 6 epochs; 25% of servers die after epoch "
      "1.");

  const sim::SummitConfig cfg = sim::summit_defaults();
  sim::DlJobConfig job;
  job.app = workload::resnet50();
  job.nodes = 1024;  // deep enough that GPFS fallback saturates the MDS
  job.epochs_override = 6;
  job.dataset_scale = bench::adaptive_scale(job.app, job.nodes, 8);

  auto run = [&](uint32_t replicas, uint32_t failed) {
    sim::HvacSimOptions options;
    options.instances_per_node = 1;
    options.placement = core::PlacementPolicy::kRendezvous;
    options.replicas = replicas;
    options.failed_servers = failed;
    options.fail_at_seconds = 2.0;  // within epoch 1 cold phase
    return sim::run_dl_job(cfg, job, "HVAC", &options);
  };

  std::printf("%-28s %10s %10s %12s %12s %12s\n", "variant",
              "total(min)", "avg_ep(s)", "failovers", "gpfs_fb",
              "net GB");
  struct Case {
    const char* label;
    uint32_t replicas;
    uint32_t failed;
  };
  for (const Case c : {Case{"healthy, r=1", 1, 0},
                       Case{"healthy, r=2", 2, 0},
                       Case{"25% dead, r=1 (fallback)", 1, 256},
                       Case{"25% dead, r=2 (failover)", 2, 256}}) {
    const auto r = run(c.replicas, c.failed);
    std::printf("%-28s %10.1f %10.1f %12lu %12lu %12.1f\n", c.label,
                r.total_seconds / 60.0, r.avg_epoch_seconds(),
                (unsigned long)r.io.failover_reads,
                (unsigned long)r.io.dead_fallback_reads,
                r.io.bytes_over_network / 1e9);
    std::fflush(stdout);
  }
  std::printf("\n(r=2 turns permanent GPFS fallback into NVMe-speed "
              "replica reads at the cost of 2x interconnect traffic "
              "during the cold epoch)\n");
  return 0;
}
