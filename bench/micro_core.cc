// Microbenchmarks (google-benchmark) for the hot primitives: stable
// hashing, the three placement policies, eviction bookkeeping, the
// MPMC queue and wire serialization.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/mpmc_queue.h"
#include "core/eviction.h"
#include "core/placement.h"
#include "rpc/wire.h"

namespace {

using namespace hvac;

void BM_StableHash(benchmark::State& state) {
  const std::string path =
      "train/class_0421/imagenet21k_00314159.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(stable_hash(path));
  }
}
BENCHMARK(BM_StableHash);

void BM_PlacementHome(benchmark::State& state) {
  const auto policy = static_cast<core::PlacementPolicy>(state.range(0));
  core::Placement placement(1024, policy);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        placement.home("c/" + std::to_string(i++ & 1023)));
  }
}
BENCHMARK(BM_PlacementHome)
    ->Arg(int(core::PlacementPolicy::kHashModulo))
    ->Arg(int(core::PlacementPolicy::kRendezvous))
    ->Arg(int(core::PlacementPolicy::kJump));

void BM_PlacementReplicaSet(benchmark::State& state) {
  core::Placement placement(1024, core::PlacementPolicy::kRendezvous, 3);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.homes("f" + std::to_string(i++)));
  }
}
BENCHMARK(BM_PlacementReplicaSet);

void BM_EvictionInsertEvict(benchmark::State& state) {
  auto policy = core::make_eviction_policy(
      state.range(0) == 0 ? "random" : state.range(0) == 1 ? "fifo"
                                                           : "lru");
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ & 4095);
    policy->on_insert(key);
    policy->on_access(key);
    if ((i & 7) == 0) {
      if (auto victim = policy->select_victim()) {
        policy->on_evict(*victim);
      }
    }
  }
}
BENCHMARK(BM_EvictionInsertEvict)->Arg(0)->Arg(1)->Arg(2);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<uint64_t> queue(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    (void)queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_MpmcPushPop);

void BM_WireEncodeOpenRequest(benchmark::State& state) {
  for (auto _ : state) {
    rpc::WireWriter w;
    w.put_string("class_0421/imagenet21k_00314159.bin");
    w.put_u64(1234567);
    w.put_u32(4096);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_WireEncodeOpenRequest);

void BM_WireDecodeReadResponse(benchmark::State& state) {
  rpc::WireWriter w;
  std::vector<uint8_t> blob(size_t(state.range(0)));
  w.put_blob(blob.data(), blob.size());
  const rpc::Bytes frame = w.bytes();
  for (auto _ : state) {
    rpc::WireReader r(frame);
    benchmark::DoNotOptimize(r.get_blob());
  }
}
BENCHMARK(BM_WireDecodeReadResponse)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
