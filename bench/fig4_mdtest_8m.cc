// Fig 4 — MDTest: transactions/second for 8 MB random file
// open-read-close, GPFS vs XFS-on-NVMe. Large files shift the
// bottleneck from metadata to bandwidth; the GPFS aggregate pipe
// (2.5 TB/s) wins at small node counts, the aggregated NVMe
// (5.5 GB/s x nodes) overtakes near ~450 nodes — the crossover the
// paper highlights in Sec. II-C.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/mdtest.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Fig 4 — MDTest 8MB open-read-close transactions/s",
      "Bandwidth-bound regime; GPFS/XFS crossover near 450 nodes.");

  const sim::SummitConfig cfg = sim::summit_defaults();
  std::printf("%8s %16s %16s %10s\n", "nodes", "GPFS tx/s",
              "XFS-on-NVMe tx/s", "winner");
  for (uint32_t nodes :
       {1, 2, 4, 8, 16, 32, 64, 128, 256, 384, 450, 512, 768, 1024}) {
    sim::MdTestConfig test;
    test.nodes = nodes;
    test.file_bytes = 8 * 1024 * 1024;
    test.transactions_per_rank = 12;
    const double gpfs =
        run_mdtest(cfg, test, "GPFS").transactions_per_second;
    const double xfs =
        run_mdtest(cfg, test, "XFS").transactions_per_second;
    std::printf("%8u %16.0f %16.0f %10s\n", nodes, gpfs, xfs,
                xfs > gpfs ? "XFS" : "GPFS");
  }
  return 0;
}
