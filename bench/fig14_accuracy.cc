// Fig 14 — training-to-accuracy with HVAC: top-1/top-5 accuracy vs
// iteration for the same model trained with direct PFS reads ("GPFS")
// and through a live HVAC allocation. This is the *functional*
// system, not the simulator: a real softmax model, real files, real
// RPC. Paper finding: the curves coincide — hashing-based lookup does
// not perturb SGD's shuffled order — so HVAC reaches the same
// accuracy in less wall-clock.
#include <cstdio>

#include "bench/bench_util.h"
#include "client/hvac_client.h"
#include "server/node_runtime.h"
#include "storage/posix_file.h"
#include "train/trainer.h"

using namespace hvac;

namespace {

Result<std::vector<uint8_t>> client_read_all(client::HvacClient& client,
                                             const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(int fd, client.open(path));
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, client.read(fd, buf.data(),
                                                buf.size()));
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  HVAC_RETURN_IF_ERROR(client.close(fd));
  return data;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 14 — Accuracy vs iterations: GPFS reads vs HVAC reads",
      "Real SGD on the functional system. Curves must coincide "
      "point-for-point.");

  const std::string pfs_root = "/tmp/hvac_fig14/pfs";
  train::MixtureSpec data;
  data.train_samples = 480;
  data.test_samples = 240;
  if (!train::write_train_files(data, pfs_root).ok()) return 1;

  server::NodeRuntimeOptions node_options;
  node_options.pfs_root = pfs_root;
  node_options.cache_root = "/tmp/hvac_fig14/cache";
  node_options.instances = 2;
  server::NodeRuntime node(node_options);
  if (!node.start().ok()) return 1;

  train::LoopConfig loop;
  loop.data = data;
  loop.epochs = 6;
  loop.dataset_root = pfs_root;
  loop.trainer.eval_every = 20;

  const auto gpfs_curve = train::run_training_loop(
      loop,
      [](const std::string& path) { return storage::read_file(path); });
  if (!gpfs_curve.ok()) return 1;

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();
  client::HvacClient client(copts);
  const auto hvac_curve = train::run_training_loop(
      loop, [&client](const std::string& path) {
        return client_read_all(client, path);
      });
  if (!hvac_curve.ok()) return 1;

  std::printf("%10s %12s %12s %12s %12s\n", "iteration", "GPFS top1",
              "HVAC top1", "GPFS top5", "HVAC top5");
  for (size_t i = 0; i < gpfs_curve->points.size(); ++i) {
    const auto& g = gpfs_curve->points[i];
    const auto& h = hvac_curve->points[i];
    std::printf("%10lu %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                (unsigned long)g.iteration, 100 * g.top1, 100 * h.top1,
                100 * g.top5, 100 * h.top5);
  }
  const bool identical = gpfs_curve->identical_to(*hvac_curve);
  std::printf("\ncurves bit-identical: %s (paper: accuracy unaffected)\n",
              identical ? "YES" : "NO");
  std::printf("cache served %lu hits / %lu misses during the HVAC run\n",
              (unsigned long)node.aggregated_metrics().hits,
              (unsigned long)node.aggregated_metrics().misses);
  node.stop();
  return identical ? 0 : 1;
}
