// Ablation — prefetching (the paper's stated future work, §IV-C):
// pre-populating the HVAC cache before epoch 1 removes the cold-epoch
// penalty. Also exercises overlap of batch I/O with compute.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Ablation — prefetch / warm cache and I/O-compute overlap",
      "ResNet50, 512 nodes, 10 epochs, HVAC(2x1); at this scale the "
      "cold epoch is GPFS-bound.");

  const workload::AppSpec app = workload::resnet50();
  sim::DlJobConfig job;
  job.app = app;
  job.nodes = 512;
  job.epochs_override = 10;
  job.dataset_scale = bench::adaptive_scale(app, job.nodes, 12);

  sim::SummitConfig cfg = sim::summit_defaults();

  sim::HvacSimOptions cold;
  cold.instances_per_node = 2;
  const auto r_cold = sim::run_dl_job(cfg, job, "HVAC", &cold);

  sim::HvacSimOptions warm = cold;
  warm.prewarmed = true;
  const auto r_warm = sim::run_dl_job(cfg, job, "HVAC", &warm);

  cfg.overlap_io_compute = true;
  const auto r_overlap = sim::run_dl_job(cfg, job, "HVAC", &cold);

  std::printf("%-34s %10s %10s\n", "variant", "epoch1(s)", "total(min)");
  std::printf("%-34s %10.1f %10.1f\n", "baseline (cold first epoch)",
              r_cold.first_epoch_seconds(), r_cold.total_seconds / 60);
  std::printf("%-34s %10.1f %10.1f\n", "prefetched (pre-warmed cache)",
              r_warm.first_epoch_seconds(), r_warm.total_seconds / 60);
  std::printf("%-34s %10.1f %10.1f\n", "cold + I/O-compute overlap",
              r_overlap.first_epoch_seconds(),
              r_overlap.total_seconds / 60);
  std::printf("\nepoch-1 penalty removed by prefetch: %.1f%% of epoch-1\n",
              100.0 * (1.0 - r_warm.first_epoch_seconds() /
                                 r_cold.first_epoch_seconds()));
  return 0;
}
