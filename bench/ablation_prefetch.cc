// Ablation — prefetching (the paper's stated future work, §IV-C), on
// the FUNCTIONAL system: a live HVAC allocation over a latency-modelled
// PFS, a real SGD loop, and the real clairvoyant scheduler. Three
// variants of the same training run:
//
//   demand       cold cache, every first read pays the PFS
//   warm-up      prefetch_many() blocks before each epoch (the naive
//                "pre-populate then train" strategy)
//   clairvoyant  set_access_plan() per epoch; the scheduler warms
//                samples AHEAD of the training cursor, overlapping
//                PFS fetches with compute
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/hvac_client.h"
#include "client/prefetch_scheduler.h"
#include "server/node_runtime.h"
#include "train/trainer.h"

using namespace hvac;

namespace {

Result<std::vector<uint8_t>> client_read_all(client::HvacClient& client,
                                             const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(int fd, client.open(path));
  std::vector<uint8_t> data;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, client.read(fd, buf.data(),
                                                buf.size()));
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  HVAC_RETURN_IF_ERROR(client.close(fd));
  return data;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::vector<double> epoch_seconds;
  double total_seconds = 0;
  client::PrefetchScheduler::Stats prefetch;
  uint64_t deduped = 0;
};

// One full training run against a fresh (cold) allocation.
bool run_variant(const char* name, const std::string& pfs_root,
                 const train::LoopConfig& base, int mode,
                 RunResult* out) {
  server::NodeRuntimeOptions node_options;
  node_options.pfs_root = pfs_root;
  // Congested-PFS model: every open/stat pays metadata latency, so a
  // cold epoch is PFS-bound exactly like the paper's 512-node runs.
  node_options.pfs_options.metadata_latency_us = 250;
  node_options.pfs_options.seed = 0x9e3779b9;
  node_options.cache_root =
      std::string("/tmp/hvac_ablation_prefetch/cache_") + name;
  node_options.instances = 2;
  node_options.data_mover_threads = 4;
  server::NodeRuntime node(node_options);
  if (!node.start().ok()) return false;

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();
  if (mode == 2) copts.prefetch_depth = 128;
  client::HvacClient client(copts);

  train::LoopConfig loop = base;
  std::vector<double> epoch_starts;
  loop.on_epoch_plan = [&](uint32_t, const std::vector<std::string>& p) {
    epoch_starts.push_back(now_s());
    if (mode == 1) {
      (void)client.prefetch_many(p);  // blocking pre-population
    } else if (mode == 2) {
      client.set_access_plan(p);  // pipelined, overlaps with compute
    }
  };

  const double t0 = now_s();
  const auto curve = train::run_training_loop(
      loop, [&client](const std::string& path) {
        return client_read_all(client, path);
      });
  const double t1 = now_s();
  if (!curve.ok()) return false;

  out->total_seconds = t1 - t0;
  for (size_t e = 0; e < epoch_starts.size(); ++e) {
    const double end = e + 1 < epoch_starts.size() ? epoch_starts[e + 1]
                                                   : t1;
    out->epoch_seconds.push_back(end - epoch_starts[e]);
  }
  if (client::PrefetchScheduler* pf = client.prefetch_scheduler()) {
    out->prefetch = pf->stats();
  }
  out->deduped = node.aggregated_frame().prefetch.deduped;
  node.stop();
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — prefetch: demand vs warm-up vs clairvoyant",
      "Functional system over a 250us-metadata-latency PFS model; the "
      "cold epoch is PFS-bound.");

  const std::string pfs_root = "/tmp/hvac_ablation_prefetch/pfs";
  train::MixtureSpec data;
  data.train_samples = 384;
  data.test_samples = 96;
  if (!train::write_train_files(data, pfs_root).ok()) return 1;

  train::LoopConfig loop;
  loop.data = data;
  loop.epochs = 3;
  loop.dataset_root = pfs_root;
  loop.trainer.eval_every = 1u << 30;  // time I/O, not evaluation

  RunResult demand, warmup, clair;
  if (!run_variant("demand", pfs_root, loop, 0, &demand)) return 1;
  if (!run_variant("warmup", pfs_root, loop, 1, &warmup)) return 1;
  if (!run_variant("clairvoyant", pfs_root, loop, 2, &clair)) return 1;

  std::printf("%-34s %10s %10s\n", "variant", "epoch1(s)", "total(s)");
  std::printf("%-34s %10.2f %10.2f\n", "demand (cold first epoch)",
              demand.epoch_seconds.at(0), demand.total_seconds);
  std::printf("%-34s %10.2f %10.2f\n", "warm-up (blocking prefetch_many)",
              warmup.epoch_seconds.at(0), warmup.total_seconds);
  std::printf("%-34s %10.2f %10.2f\n", "clairvoyant (planned pipeline)",
              clair.epoch_seconds.at(0), clair.total_seconds);

  std::printf(
      "\nclairvoyant scheduler: %lu planned, %lu issued, %lu completed, "
      "%lu hit-after-prefetch, %lu late, %lu shed, %lu deduped\n",
      (unsigned long)clair.prefetch.planned,
      (unsigned long)clair.prefetch.issued,
      (unsigned long)clair.prefetch.completed,
      (unsigned long)clair.prefetch.hit_after_prefetch,
      (unsigned long)clair.prefetch.late,
      (unsigned long)clair.prefetch.shed,
      (unsigned long)clair.deduped);
  std::printf("cold-epoch speedup vs demand: %.2fx\n",
              demand.epoch_seconds.at(0) /
                  std::max(clair.epoch_seconds.at(0), 1e-9));
  return 0;
}
