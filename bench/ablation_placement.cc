// Ablation — placement function (paper §III-E uses hash-modulo and
// cites CRUSH/consistent hashing as alternatives; §III-H proposes
// replication). Compares balance and failure disruption of
// hash-modulo, rendezvous (HRW) and jump consistent hashing.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/placement.h"
#include "workload/dataset_spec.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Ablation — placement policy: balance and failure disruption",
      "100k-file population; 256 -> 255 servers models one node loss.");

  const auto dataset = workload::synthetic_small(100000, 163 * 1024, 0.6);
  std::vector<std::string> paths;
  paths.reserve(dataset.num_files);
  for (uint64_t f = 0; f < dataset.num_files; ++f) {
    paths.push_back(workload::dataset_file_path(dataset, f));
  }

  std::printf("%14s %12s %18s\n", "policy", "CoV(files)",
              "moved on -1 node");
  for (const auto policy :
       {core::PlacementPolicy::kHashModulo,
        core::PlacementPolicy::kRendezvous, core::PlacementPolicy::kJump}) {
    core::Placement before(256, policy);
    core::Placement after(255, policy);
    std::vector<double> counts(256, 0.0);
    uint64_t moved = 0;
    for (const auto& p : paths) {
      const uint32_t b = before.home(p);
      ++counts[b];
      if (after.home(p) != b) ++moved;
    }
    std::printf("%14s %12.4f %16.1f%%\n",
                core::placement_policy_name(policy),
                coefficient_of_variation(counts),
                100.0 * double(moved) / double(paths.size()));
  }
  std::printf("\n(hash-modulo reshuffles ~everything on membership "
              "change; HRW/jump move only the lost share — the paper's "
              "future-work fail-over motivation)\n");

  std::printf("\nReplica sets (rendezvous, r=2): fail-over coverage\n");
  core::Placement replicated(256, core::PlacementPolicy::kRendezvous, 2);
  uint64_t survivable = 0;
  constexpr uint32_t kDeadServer = 17;
  for (const auto& p : paths) {
    const auto homes = replicated.homes(p);
    if (homes[0] != kDeadServer || homes[1] != kDeadServer) {
      ++survivable;
    }
  }
  std::printf("  files still reachable with server %u dead: %.2f%%\n",
              kDeadServer, 100.0 * double(survivable) / paths.size());
  return 0;
}
