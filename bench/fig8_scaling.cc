// Fig 8(a-d) — training time (minutes) vs number of compute nodes for
// the four DL applications, comparing GPFS, HVAC(1x1/2x1/4x1) and
// XFS-on-NVMe. 10 epochs, 2 training processes per node (the paper's
// setup). Paper shape: GPFS stops scaling (metadata wall, even
// regressing past ~450 nodes); all HVAC variants scale like XFS with
// a small constant overhead.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  const std::vector<workload::AppSpec> apps = {
      workload::resnet50(), workload::tresnet_m(), workload::cosmoflow(),
      workload::deepcam()};
  const std::vector<uint32_t> node_counts = {1,   32,  64,  128,
                                             256, 512, 1024};

  bench::print_header(
      "Fig 8 — Training time (min) vs nodes, 4 DL applications",
      "10 epochs, 2 procs/node. Columns: GPFS, HVAC(1x1), HVAC(2x1), "
      "HVAC(4x1), XFS-on-NVMe.");

  for (const auto& app : apps) {
    std::printf("\n(%s)  [BS=%u, Eps=10, nProcs/node=2]\n",
                app.name.c_str(), app.batch_size);
    std::printf("%7s", "nodes");
    for (const auto& sys : bench::all_systems()) {
      std::printf(" %12s", sys.c_str());
    }
    std::printf("\n");
    for (uint32_t nodes : node_counts) {
      std::printf("%7u", nodes);
      for (const auto& sys : bench::all_systems()) {
        const auto r = bench::run_point(cfg, app, nodes, sys,
                                        /*epochs=*/10, /*batch_size=*/0,
                                        /*batches_per_rank=*/8);
        std::printf(" %12.1f", r.total_seconds / 60.0);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
