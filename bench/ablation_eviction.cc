// Ablation — eviction policy under cache pressure (paper §III-G ships
// random eviction and invites alternatives). A functional (not
// simulated) experiment: a cache sized to a fraction of the dataset,
// epochs of shuffled re-reads, hit rates per policy.
#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "core/cache_manager.h"
#include "workload/file_tree.h"
#include "workload/shuffler.h"

int main() {
  using namespace hvac;
  bench::print_header(
      "Ablation — eviction policy vs cache pressure (functional)",
      "Shuffled epochs over a dataset larger than the cache; hit rate "
      "by policy.");

  const std::string pfs_root = "/tmp/hvac_ablation_evict/pfs";
  std::filesystem::remove_all("/tmp/hvac_ablation_evict");
  const auto spec = workload::synthetic_small(128, 8192, 0.0);
  const auto tree = workload::generate_tree(pfs_root, spec);
  if (!tree.ok()) return 1;

  std::printf("%10s", "cache%");
  for (const char* policy : {"random", "fifo", "lru"}) {
    std::printf(" %10s", policy);
  }
  std::printf("\n");

  for (const double fraction : {0.25, 0.5, 0.75, 1.0}) {
    std::printf("%9.0f%%", fraction * 100);
    for (const char* policy : {"random", "fifo", "lru"}) {
      storage::PfsBackend pfs(pfs_root);
      const auto capacity =
          uint64_t(fraction * double(tree->total_bytes));
      auto cache = core::CacheManager(
          &pfs,
          std::make_unique<storage::LocalStore>(
              std::string("/tmp/hvac_ablation_evict/cache_") + policy,
              capacity),
          core::make_eviction_policy(policy));

      workload::EpochShuffler shuffler(tree->relative_paths.size(), 11);
      for (uint32_t epoch = 0; epoch < 4; ++epoch) {
        for (uint64_t idx : shuffler.shuffled(epoch)) {
          (void)cache.read_through(tree->relative_paths[idx]);
        }
      }
      const auto m = cache.metrics();
      std::printf(" %9.1f%%", 100.0 * m.hit_rate());
      cache.purge();
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n(random >= fifo >= lru under shuffled re-reads: LRU is "
              "pathological for cyclic access, so the paper's simple "
              "random policy is also the right one)\n");
  return 0;
}
