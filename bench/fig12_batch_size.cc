// Fig 12 — impact of batch size (4 -> 128) on training time for
// TResNet_M (a) and DeepCAM (b) at 512 nodes. Paper finding: only a
// slight (2-4%) improvement from bigger batches — fewer round trips,
// same bytes — and the trend holds for GPFS, HVAC and XFS alike.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace hvac;
  const sim::SummitConfig cfg = sim::summit_defaults();
  constexpr uint32_t kNodes = 512;

  for (const auto& app : {workload::tresnet_m(), workload::deepcam()}) {
    bench::print_header(
        "Fig 12 — Training time (min) vs batch size: " + app.name,
        "nNodes=512, Eps=10.");
    std::printf("%8s", "BS");
    for (const auto& sys : bench::all_systems()) {
      std::printf(" %12s", sys.c_str());
    }
    std::printf("\n");
    for (uint32_t bs : {4, 8, 16, 32, 64, 128}) {
      // run_point holds per-sample compute constant as BS varies.
      std::printf("%8u", bs);
      for (const auto& sys : bench::all_systems()) {
        const auto r = bench::run_point(cfg, app, kNodes, sys,
                                        /*epochs=*/10, bs,
                                        /*batches_per_rank=*/8);
        std::printf(" %12.1f", r.total_seconds / 60.0);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
